package simdram

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
)

// obsServer is a testServer with full trace sampling.
func obsServer(t testing.TB, channels int, tune func(*ServerConfig)) *Server {
	t.Helper()
	return testServer(t, channels, func(cfg *ServerConfig) {
		cfg.TraceSampling = 1.0
		if tune != nil {
			tune(cfg)
		}
	})
}

// spanByName returns the first span with the given name, or nil.
func spanByName(jt JobTrace, name string) *TraceSpan {
	for i := range jt.Spans {
		if jt.Spans[i].Name == name {
			return &jt.Spans[i]
		}
	}
	return nil
}

func TestServerTracesEveryJobAtFullSampling(t *testing.T) {
	srv := obsServer(t, 2, nil)
	rng := rand.New(rand.NewSource(11))
	const jobs = 6
	ids := map[uint64]bool{}
	for i := 0; i < jobs; i++ {
		a, b := randData(rng, 64, 8), randData(rng, 64, 8)
		fut, err := srv.SubmitLazy(context.Background(), "t1", Input(a, 8).Add(Input(b, 8)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.TraceID == 0 {
			t.Fatalf("job %d: sampling 1.0 must assign a trace ID", i)
		}
		if ids[res.TraceID] {
			t.Fatalf("duplicate trace ID %d", res.TraceID)
		}
		ids[res.TraceID] = true
	}

	traces := srv.Traces()
	if len(traces) != jobs {
		t.Fatalf("recorder has %d traces, want %d", len(traces), jobs)
	}
	for _, jt := range traces {
		if !ids[jt.ID] {
			t.Fatalf("trace %d does not match any JobResult.TraceID", jt.ID)
		}
		if jt.Err != "" {
			t.Fatalf("trace %d reports error %q for a successful job", jt.ID, jt.Err)
		}
		// Structural checks: root is "job"; every expected stage is
		// present, closed, nested under a valid parent, and inside its
		// parent's window.
		if len(jt.Spans) == 0 || jt.Spans[0].Name != "job" || jt.Spans[0].Parent != -1 {
			t.Fatalf("trace %d: bad root: %+v", jt.ID, jt.Spans)
		}
		for _, name := range []string{"queue", "compile", "cache-lookup", "lower", "prepare", "resolve", "execute", "run", "gather"} {
			sp := spanByName(jt, name)
			if sp == nil {
				t.Fatalf("trace %d: missing span %q (have %+v)", jt.ID, name, jt.Spans)
			}
			if sp.EndNs < sp.StartNs {
				t.Fatalf("trace %d: span %q never closed: %+v", jt.ID, name, sp)
			}
			if sp.Parent < 0 || sp.Parent >= len(jt.Spans) {
				t.Fatalf("trace %d: span %q has bad parent %d", jt.ID, name, sp.Parent)
			}
			par := jt.Spans[sp.Parent]
			if sp.StartNs < par.StartNs || sp.EndNs > par.EndNs {
				t.Fatalf("trace %d: span %q [%d,%d] outside parent %q [%d,%d]",
					jt.ID, name, sp.StartNs, sp.EndNs, par.Name, par.StartNs, par.EndNs)
			}
		}
		// Channel-bound stages carry the channel that ran the job.
		ex := spanByName(jt, "execute")
		if ex.Channel < 0 || ex.Channel >= 2 {
			t.Fatalf("trace %d: execute channel %d out of range", jt.ID, ex.Channel)
		}
		if run := spanByName(jt, "run"); run.Channel != ex.Channel {
			t.Fatalf("trace %d: run channel %d != execute channel %d", jt.ID, run.Channel, ex.Channel)
		}
	}
}

func TestServerSpanDurationsMatchLatencySplit(t *testing.T) {
	// The acceptance criterion: a traced job's top-level span durations
	// must sum (within tolerance) to the job's reported latency split
	// (QueueNs + RunNs). Queue is measured by both clocks with
	// microseconds of skew; the top-level pipeline spans (compile,
	// prepare, execute, gather) tile the worker's run window.
	srv := obsServer(t, 1, nil)
	rng := rand.New(rand.NewSource(5))
	a, b := randData(rng, 256, 8), randData(rng, 256, 8)
	fut, err := srv.SubmitLazy(context.Background(), "t1", Input(a, 8).Mul(Input(b, 8)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var jt *JobTrace
	for _, tr := range srv.Traces() {
		if tr.ID == res.TraceID {
			jt = &tr
			break
		}
	}
	if jt == nil {
		t.Fatalf("trace %d not in recorder", res.TraceID)
	}
	var sum int64
	for _, name := range []string{"queue", "compile", "prepare", "execute", "gather"} {
		sp := spanByName(*jt, name)
		if sp == nil {
			t.Fatalf("missing span %q", name)
		}
		sum += sp.DurNs()
	}
	total := res.QueueNs + res.RunNs
	// The spans cannot cover more than the job, and must cover most of
	// it: the uncovered remainder is scheduler bookkeeping between
	// span boundaries (clock handoff, closure dispatch), bounded here
	// at 20% or 200µs, whichever is larger.
	slack := total / 5
	if slack < 200_000 {
		slack = 200_000
	}
	if sum > total+slack {
		t.Fatalf("span sum %dns exceeds job latency %dns (+slack %d)", sum, total, slack)
	}
	if sum < total-slack {
		t.Fatalf("span sum %dns covers too little of job latency %dns (-slack %d)", sum, total, slack)
	}
}

func TestServerTracingDisabledByDefault(t *testing.T) {
	srv := testServer(t, 1, nil)
	fut, err := srv.SubmitLazy(context.Background(), "t1", Input([]uint64{1, 2, 3}, 8).Add(Scalar(1, 8)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != 0 {
		t.Fatal("tracing off by default: no trace ID expected")
	}
	if got := srv.Traces(); len(got) != 0 {
		t.Fatalf("recorder must stay empty with tracing disabled, has %d", len(got))
	}
}

func TestServerEventsAndResetTraces(t *testing.T) {
	srv := obsServer(t, 1, nil)
	// A failing job (element-count mismatch discovered at compile)
	// must land in the event ring.
	bad := Input([]uint64{1, 2, 3}, 8).Add(Input([]uint64{1, 2}, 8))
	fut, err := srv.SubmitLazy(context.Background(), "t-bad", bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err == nil {
		t.Fatal("mismatched element counts must fail")
	}
	evs := srv.Events()
	if len(evs) == 0 || evs[len(evs)-1].Kind != "error" {
		t.Fatalf("expected an error event, have %+v", evs)
	}
	if _, total, depth := srv.TraceRing(); total != 1 || depth != 64 {
		t.Fatalf("trace ring: total=%d depth=%d, want 1 and 64", total, depth)
	}
	srv.ResetTraces()
	if len(srv.Events()) != 0 || len(srv.Traces()) != 0 {
		t.Fatal("ResetTraces must clear both rings")
	}
}

func TestServerMetricsAndTenantQuantiles(t *testing.T) {
	srv := obsServer(t, 2, nil)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		a := randData(rng, 64, 8)
		fut, err := srv.SubmitLazy(context.Background(), "tq", Input(a, 8).Add(Scalar(3, 8)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	ts, ok := srv.Stats().Tenants["tq"]
	if !ok {
		t.Fatal("tenant missing from stats")
	}
	if ts.RunP50Ns <= 0 || ts.RunP99Ns < ts.RunP50Ns || ts.RunP999Ns < ts.RunP99Ns {
		t.Fatalf("run quantiles not monotone/positive: %+v", ts)
	}
	if ts.QueueP99Ns < ts.QueueP50Ns {
		t.Fatalf("queue quantiles not monotone: %+v", ts)
	}

	points := srv.Metrics()
	byName := map[string]MetricPoint{}
	for _, p := range points {
		byName[p.Name] = p
	}
	if p := byName["sched.completed"]; p.Kind != "counter" || p.Value != 8 {
		t.Fatalf("sched.completed = %+v, want counter 8", p)
	}
	if p := byName["sched.run_ns{tenant=tq}"]; p.Kind != "histogram" || p.Value != 8 || p.P50 <= 0 {
		t.Fatalf("per-tenant run histogram wrong: %+v", p)
	}
	if p := byName["cluster.batches"]; p.Kind != "counter" {
		t.Fatalf("cluster.batches missing: %+v", points)
	}
}

func TestServerDebugHandler(t *testing.T) {
	srv := obsServer(t, 1, nil)
	fut, err := srv.SubmitLazy(context.Background(), "t1", Input([]uint64{4, 5, 6}, 8).Add(Scalar(1, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/simdram", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var doc struct {
		Stats   ServerStats   `json:"stats"`
		Metrics []MetricPoint `json:"metrics"`
		Traces  []JobTrace    `json:"traces"`
		Events  []ObsEvent    `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Stats.Completed != 1 || len(doc.Traces) != 1 || len(doc.Metrics) == 0 {
		t.Fatalf("debug doc incomplete: stats=%+v traces=%d metrics=%d",
			doc.Stats, len(doc.Traces), len(doc.Metrics))
	}
	if doc.Traces[0].Spans[0].Name != "job" {
		t.Fatalf("trace root lost in JSON round-trip: %+v", doc.Traces[0])
	}
}

func TestServerStatsConsistentUnderConcurrency(t *testing.T) {
	// Satellite: Stats() snapshot consistency under concurrent
	// Submit/Stats/Close (run with -race). Counters must stay monotone
	// across snapshots, resolved jobs never exceed submissions, and
	// tenant maps must never be torn (every snapshot's per-tenant
	// counters are internally coherent).
	srv := obsServer(t, 2, func(cfg *ServerConfig) {
		cfg.QueueDepth = 64
	})
	const submitters, perSubmitter = 4, 25
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Stats readers race with submitters and verify monotonicity. The
	// reader has its own completion channel: it must keep reading until
	// the workers AND Close are done, so it cannot share their group.
	var readerErr error
	var readerMu sync.Mutex
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var lastSubmitted, lastResolved uint64
		for {
			st := srv.Stats()
			resolved := st.Completed + st.Failed + st.Canceled
			readerMu.Lock()
			switch {
			case st.Submitted < lastSubmitted:
				readerErr = fmt.Errorf("Submitted went backwards: %d -> %d", lastSubmitted, st.Submitted)
			case resolved < lastResolved:
				readerErr = fmt.Errorf("resolved went backwards: %d -> %d", lastResolved, resolved)
			case resolved > st.Submitted:
				readerErr = fmt.Errorf("resolved %d > submitted %d", resolved, st.Submitted)
			}
			bad := readerErr != nil
			readerMu.Unlock()
			if bad {
				return
			}
			lastSubmitted, lastResolved = st.Submitted, resolved
			var tenantTotal uint64
			for name, ts := range st.Tenants {
				if ts.Completed+ts.Failed+ts.Canceled > ts.Submitted {
					readerMu.Lock()
					readerErr = fmt.Errorf("tenant %s torn: %+v", name, ts)
					readerMu.Unlock()
					return
				}
				tenantTotal += ts.Submitted
			}
			if tenantTotal > st.Submitted {
				readerMu.Lock()
				readerErr = fmt.Errorf("tenant submitted sum %d > global %d", tenantTotal, st.Submitted)
				readerMu.Unlock()
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			tenant := fmt.Sprintf("t%d", w%3)
			for i := 0; i < perSubmitter; i++ {
				a := randData(rng, 32, 8)
				fut, err := srv.SubmitLazy(context.Background(), tenant, Input(a, 8).Add(Scalar(uint64(i), 8)))
				if err != nil {
					// Admission rejections and a closing server are the
					// expected overload outcomes; anything else is a bug.
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrTenantQuota) && !errors.Is(err, ErrServerClosed) {
						t.Errorf("submit: %v", err)
					}
					continue
				}
				if _, err := fut.Wait(); err != nil && !errors.Is(err, ErrServerClosed) {
					t.Errorf("wait: %v", err)
				}
			}
		}(w)
	}
	// Close concurrently with the last submissions: queued jobs drain
	// with ErrServerClosed, counters must still reconcile.
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Close()
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	readerMu.Lock()
	defer readerMu.Unlock()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	st := srv.Stats()
	if st.Completed+st.Failed+st.Canceled != st.Submitted {
		t.Fatalf("final counters do not reconcile: %+v", st)
	}
}
