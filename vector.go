package simdram

// Vector is a SIMDRAM object: n elements of a given bit width stored in
// the vertical layout across one or more subarrays. Element j of segment
// i occupies column j of that subarray, bits in consecutive rows.
type Vector struct {
	sys    *System
	handle uint16
	n      int
	width  int
	segs   []segment
	freed  bool
	view   bool    // aliases another vector's rows; Free releases nothing
	base   *Vector // for views: the row-owning vector this view aliases
	views  []*Vector
}

type segment struct {
	bank, sub int
	baseRow   int
	lanes     int // elements mapped to this subarray (≤ Cols)
}

// AllocVector reserves rows for n elements of the given width. Segments
// are spread bank-major so that consecutive segments execute in parallel
// banks. Vectors allocated in the same order with the same n share their
// segment placement, which is what lets an operation's sources and
// destination meet in the same subarrays.
func (s *System) AllocVector(n, width int) (*Vector, error) {
	return s.allocVector(n, width, 0)
}

// AllocVectorAt is AllocVector with an explicit starting placement: the
// first segment lands in the given (bank, subarray) and later segments
// continue the bank-major order from there. Operands of one operation
// must share placement (allocate them with the same origin and length);
// giving *different* origins to independent operand groups spreads them
// across banks, which is what lets ExecBatch overlap their
// instructions.
func (s *System) AllocVectorAt(n, width, bank, sub int) (*Vector, error) {
	if bank < 0 || bank >= s.cfg.DRAM.Banks || sub < 0 || sub >= s.cfg.DRAM.SubarraysPerBank {
		return nil, errorf("placement (%d,%d) out of range", bank, sub)
	}
	return s.allocVector(n, width, bank+sub*s.cfg.DRAM.Banks)
}

// allocVector reserves rows starting at position origin of the
// bank-major segment order.
func (s *System) allocVector(n, width, origin int) (*Vector, error) {
	if n <= 0 {
		return nil, errorf("vector size must be positive, have %d", n)
	}
	if width < 1 || width > 64 {
		return nil, errorf("width %d out of range [1,64]", width)
	}
	cols := s.cfg.DRAM.Cols
	nSegs := (n + cols - 1) / cols
	v := &Vector{sys: s, n: n, width: width}
	remaining := n
	for i := 0; i < nSegs; i++ {
		bank, sub := s.segmentOrder(origin + i)
		base, ok := s.rows[bank][sub].alloc(width)
		if !ok {
			// Roll back what this vector already claimed.
			for _, seg := range v.segs {
				s.rows[seg.bank][seg.sub].release(seg.baseRow, width)
			}
			return nil, errorf("out of data rows in bank %d subarray %d (need %d rows)", bank, sub, width)
		}
		lanes := cols
		if remaining < lanes {
			lanes = remaining
		}
		remaining -= lanes
		v.segs = append(v.segs, segment{bank: bank, sub: sub, baseRow: base, lanes: lanes})
	}
	h, err := s.handles.alloc()
	if err != nil {
		for _, seg := range v.segs {
			s.rows[seg.bank][seg.sub].release(seg.baseRow, width)
		}
		return nil, err
	}
	v.handle = h
	s.objects[v.handle] = v
	return v, nil
}

// Handle returns the object handle used in bbop instructions.
func (v *Vector) Handle() uint16 { return v.handle }

// Len returns the element count.
func (v *Vector) Len() int { return v.n }

// Width returns the element width in bits.
func (v *Vector) Width() int { return v.width }

// Free releases the vector's handle and returns its rows to the
// subarray allocators for reuse. Freeing a View releases only the handle;
// the underlying vector still owns the rows. Freeing a base vector with
// outstanding Views invalidates them first — their rows are about to be
// reallocated, so any later use of such a view fails like use of any
// freed vector instead of silently reading recycled rows.
func (v *Vector) Free() {
	if v.freed {
		return
	}
	if v.view {
		// Unregister from the row owner so freed views don't pile up on
		// a long-lived base.
		vs := v.base.views
		for i, vw := range vs {
			if vw == v {
				vs[i] = vs[len(vs)-1]
				v.base.views = vs[:len(vs)-1]
				break
			}
		}
	} else {
		for _, vw := range v.views {
			delete(vw.sys.objects, vw.handle)
			vw.sys.handles.release(vw.handle)
			vw.freed = true
		}
		v.views = nil
		for _, seg := range v.segs {
			v.sys.rows[seg.bank][seg.sub].release(seg.baseRow, v.width)
		}
	}
	delete(v.sys.objects, v.handle)
	v.sys.handles.release(v.handle)
	v.freed = true
}

// View returns a read-only vector aliasing v's rows shifted up by
// rowOffset: bit i of the view is bit i+rowOffset of v. In the vertical
// layout this is the paper's free bit-shift (§2): reading element bits
// starting at row base+k divides every element by 2^k with zero DRAM
// commands — downstream operations simply read different row indices.
// The view must stay inside v's rows (rowOffset+width ≤ v.Width()).
func (v *Vector) View(rowOffset, width int) (*Vector, error) {
	if v.freed {
		return nil, errorf("view of freed vector")
	}
	if rowOffset < 0 || width < 1 || rowOffset+width > v.width {
		return nil, errorf("view rows [%d,%d) outside vector width %d", rowOffset, rowOffset+width, v.width)
	}
	base := v
	if v.view {
		base = v.base // views of views still hang off the row owner
	}
	nv := &Vector{sys: v.sys, n: v.n, width: width, view: true, base: base}
	for _, seg := range v.segs {
		nv.segs = append(nv.segs, segment{
			bank: seg.bank, sub: seg.sub,
			baseRow: seg.baseRow + rowOffset,
			lanes:   seg.lanes,
		})
	}
	h, err := v.sys.handles.alloc()
	if err != nil {
		return nil, err
	}
	nv.handle = h
	v.sys.objects[nv.handle] = nv
	base.views = append(base.views, nv)
	return nv, nil
}

// Store writes horizontal data into the vector: the transposition unit
// converts each subarray's chunk to the vertical layout and the rows are
// written through the normal host path (so both the transposition and the
// DRAM writes are accounted).
func (v *Vector) Store(data []uint64) error {
	if v.freed {
		return errorf("store to freed vector")
	}
	if len(data) != v.n {
		return errorf("store: vector holds %d elements, data has %d", v.n, len(data))
	}
	cols := v.sys.cfg.DRAM.Cols
	off := 0
	for _, seg := range v.segs {
		chunk := data[off : off+seg.lanes]
		off += seg.lanes
		rows, err := v.sys.tu.HToV(uint64(v.handle), chunk, v.width, cols)
		if err != nil {
			return err
		}
		sa := v.sys.mod.Subarray(seg.bank, seg.sub)
		for r := 0; r < v.width; r++ {
			sa.WriteRow(seg.baseRow+r, rows[r])
		}
	}
	return nil
}

// Load reads the vector back into horizontal form through the
// transposition unit.
func (v *Vector) Load() ([]uint64, error) {
	if v.freed {
		return nil, errorf("load from freed vector")
	}
	out := make([]uint64, 0, v.n)
	// One backing buffer serves every segment's vertical gather: the
	// transposition unit consumes each chunk before the next segment
	// overwrites it.
	words := v.sys.cfg.DRAM.WordsPerRow()
	rows := make([][]uint64, v.width)
	backing := make([]uint64, v.width*words)
	for r := range rows {
		rows[r] = backing[r*words : (r+1)*words]
	}
	for _, seg := range v.segs {
		sa := v.sys.mod.Subarray(seg.bank, seg.sub)
		for r := 0; r < v.width; r++ {
			sa.ReadRowInto(seg.baseRow+r, rows[r])
		}
		vals, err := v.sys.tu.VToH(uint64(v.handle), rows, v.width, seg.lanes)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	return out, nil
}

// overlaps reports whether two segment-aligned vectors physically share
// any rows — true for the same vector, and for a View whose row window
// intersects the other's. Only meaningful after aligned() holds, which
// guarantees segment i of both vectors sits in the same subarray.
func (v *Vector) overlaps(o *Vector) bool {
	for i := range v.segs {
		vs, os := v.segs[i], o.segs[i]
		if vs.baseRow < os.baseRow+o.width && os.baseRow < vs.baseRow+v.width {
			return true
		}
	}
	return false
}

// aligned reports whether two vectors share segment placement (same
// subarray sequence), the precondition for in-DRAM computation.
func (v *Vector) aligned(o *Vector) bool {
	if len(v.segs) != len(o.segs) {
		return false
	}
	for i := range v.segs {
		if v.segs[i].bank != o.segs[i].bank || v.segs[i].sub != o.segs[i].sub || v.segs[i].lanes != o.segs[i].lanes {
			return false
		}
	}
	return true
}
