package simdram

import (
	"context"
	"sync"
	"time"

	"simdram/internal/ctrl"
	"simdram/internal/graph"
	"simdram/internal/obs"
	"simdram/internal/sched"
)

// Admission errors a Server surfaces from SubmitJob/SubmitFn (and the
// legacy Submit/SubmitLazy wrappers). All are immediate rejections —
// the job was never queued — and arrive wrapped in an *AdmissionError
// carrying the reason, tier, and admission-time estimate; errors.Is
// against these sentinels keeps working unchanged.
var (
	// ErrQueueFull reports that the server's bounded job queue is at
	// capacity (or that a tier's MaxQueueNs backlog bound shed the
	// submission).
	ErrQueueFull = sched.ErrQueueFull
	// ErrTenantQuota reports that the submitting tenant already has its
	// quota of queued plus running jobs.
	ErrTenantQuota = sched.ErrTenantQuota
	// ErrDeadlineInfeasible reports that a submission's deadline cannot
	// be met at the current queue depth: estimated queue wait plus the
	// job's modeled run time lands past the deadline, so the job was
	// rejected at admission rather than queued to miss it.
	ErrDeadlineInfeasible = sched.ErrDeadlineInfeasible
	// ErrServerClosed reports submission to a closed server, or a job
	// drained from the queue by Close.
	ErrServerClosed = sched.ErrClosed
)

// AdmissionError is the typed rejection every admission failure
// unwraps from: which rule fired (Reason), for whom (Tenant, Tier),
// and what the scheduler believed at the moment it said no
// (QueueDepth, EstimatedWaitNs, ModeledNs). Use errors.As to inspect
// it, errors.Is against the sentinels above to branch on the reason.
type AdmissionError = sched.AdmissionError

// Tier declares one QoS class for ServerConfig.Tiers: Weight buys its
// tenants a proportional share of dispatch, Priority orders tiers for
// SLO-burn preemption of queued lower-tier work, and MaxQueueNs (when
// positive) sheds submissions whose estimated queue wait exceeds it.
type Tier = sched.Tier

// ServerConfig configures a Server.
type ServerConfig struct {
	// Channels is the number of independent channels — the worker pool:
	// each channel is a full System and runs one job at a time, so up
	// to Channels jobs execute concurrently.
	Channels int
	// Channel configures every channel's System.
	Channel Config
	// QueueDepth bounds jobs queued across all tenants; submissions
	// beyond it fail with ErrQueueFull. Defaults to 8× Channels.
	QueueDepth int
	// TenantQuota bounds one tenant's queued plus running jobs;
	// submissions beyond it fail with ErrTenantQuota. 0 means no
	// per-tenant bound.
	TenantQuota int
	// PlanCacheSize bounds the shared compiled-plan cache. Defaults to
	// DefaultPlanCacheSize; negative disables caching.
	PlanCacheSize int
	// ProfileThreshold is the relative divergence between a shape's
	// mean measured per-op latencies and the static cost model beyond
	// which the server invalidates the shape's cached plan and
	// recompiles it with observed costs. Defaults to
	// DefaultProfileThreshold; negative disables profile feedback.
	ProfileThreshold float64
	// ProfileMinJobs is how many executed jobs must fold into a shape's
	// profile before divergence can trigger a recompile. Defaults to
	// DefaultProfileMinJobs.
	ProfileMinJobs int
	// TraceSampling is the fraction of submitted jobs that get a span
	// trace (1.0 = every job, 0 = tracing disabled — the default, and
	// strictly allocation-free on the job hot path; fractions become
	// deterministic every-Nth sampling).
	TraceSampling float64
	// TraceDepth bounds how many completed job traces the flight
	// recorder retains (the trace ring). Defaults to 64.
	TraceDepth int
	// EventDepth bounds how many error/eviction/recompile events the
	// flight recorder retains. Defaults to 256.
	EventDepth int
	// SLOs declares latency objectives the server evaluates continuously
	// against its windowed latency histograms, emitting burn-rate "slo"
	// events into the flight recorder when one starts breaching. See the
	// SLO type for the metric syntax; invalid SLOs fail NewServer.
	SLOs []SLO
	// Tiers declares the QoS classes submissions may name in
	// JobSpec.Tier. An empty or undeclared tier resolves to the
	// configured "default" tier if one exists, else to an implicit
	// weight-1 priority-0 default. While a tier's SLOs are burning, its
	// priority preempts queued work of strictly lower-priority tiers.
	Tiers []Tier
	// VerifyPlans runs the static IR verifier (internal/verify) over
	// every compiled plan before it executes: def-before-use, operand
	// aliasing, width/arity/opcode consistency, binding bounds, and an
	// independent hazard-edge recomputation cross-checked against the
	// scheduler's dependence graph. A failing plan rejects the job with
	// typed *verify.Diagnostic errors instead of computing wrong
	// results. Costs one linear pass over each program per job.
	VerifyPlans bool
}

// DefaultServerConfig returns a server of n default-geometry channels
// with a 8n-deep queue, no per-tenant quota, and the default plan
// cache.
func DefaultServerConfig(n int) ServerConfig {
	return ServerConfig{Channels: n, Channel: DefaultConfig()}
}

// Server is the concurrent serving layer over a cluster of channels:
// tenants submit jobs — lazy expressions over Input data leaves, or
// raw closures — into a bounded admission queue; a per-tenant fair
// scheduler dispatches each job onto the next free channel; and a
// shared plan cache lets repeated request shapes skip graph
// optimization and scheduling entirely, re-binding only their operand
// rows. A canceled or deadline-expired submission context preempts
// the job: while queued it is dropped on the spot, while running the
// batch engine stops issuing instructions (ctrl.ExecuteBatchCancel)
// and the future resolves with the cancellation error.
//
//	srv, _ := simdram.NewServer(simdram.DefaultServerConfig(4))
//	defer srv.Close()
//	e := simdram.Input(pixels, 16).Add(simdram.Scalar(20, 16))
//	fut, _ := srv.SubmitLazy(ctx, "tenant-a", e)
//	res, _ := fut.Wait()   // res.Values[0] holds the result elements
//
// Submitted expressions must be self-contained (Input and Scalar
// leaves only): the channel that will run a job is not known at
// submission time, so an expression bound to a particular System's
// vectors is rejected.
type Server struct {
	cfg      ServerConfig
	cl       *Cluster
	sched    *sched.Scheduler
	plans    *graph.PlanCache
	profiles *graph.ProfileStore

	// Observability: one registry for every layer's counters and
	// latency histograms, a sampling-gated tracer handing span trees to
	// the flight recorder, and the recorder's rings of recent traces
	// and events. See docs/observability.md.
	metrics *obs.Registry
	tracer  *obs.Tracer
	rec     *obs.FlightRecorder

	// Device telemetry: per-channel/bank/tenant resource attribution,
	// windowed rates, and SLO tracking (see server_device.go). epoch
	// anchors the monotonic telemetry clock; the pump goroutine samples
	// the rings every telemetrySlice until Close.
	dev      *deviceTelemetry
	slos     []*sloTracker
	epoch    time.Time
	pumpStop chan struct{}
	pumpDone chan struct{}

	// tenantTier remembers which tier each tenant last submitted under,
	// so the SLO evaluation loop can translate a breaching per-tenant
	// SLO into a tier boost for the scheduler.
	tierMu     sync.Mutex
	tenantTier map[string]string

	// estCache memoizes admission-pricing makespans per plan-cache key,
	// invalidated by plan identity (a profile-guided recompile swaps the
	// plan and forces a reprice). Without it every submission of a hot
	// shape re-walks the plan's schedule, which is slow enough to become
	// the submission bottleneck for high-rate tenants.
	estMu    sync.Mutex
	estCache map[string]estEntry

	closeOnce sync.Once
}

// NewServer builds the channels and starts the scheduler's worker
// pool (one worker per channel).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Channels < 1 {
		return nil, errorf("server needs at least 1 channel, have %d", cfg.Channels)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8 * cfg.Channels
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = DefaultPlanCacheSize
	}
	if cfg.ProfileThreshold == 0 {
		cfg.ProfileThreshold = DefaultProfileThreshold
	}
	if cfg.ProfileMinJobs == 0 {
		cfg.ProfileMinJobs = DefaultProfileMinJobs
	}
	cl, err := NewCluster(ClusterConfig{Channels: cfg.Channels, Channel: cfg.Channel, Placement: PlaceRoundRobin})
	if err != nil {
		return nil, err
	}
	if cfg.VerifyPlans {
		cl.SetVerifyPlans(true)
	}
	if cfg.TraceDepth == 0 {
		cfg.TraceDepth = 64
	}
	if cfg.EventDepth == 0 {
		cfg.EventDepth = 256
	}
	s := &Server{
		cfg:        cfg,
		cl:         cl,
		plans:      graph.NewPlanCache(cfg.PlanCacheSize),
		profiles:   graph.NewProfileStore(cfg.ProfileThreshold, cfg.ProfileMinJobs, 4*cfg.PlanCacheSize),
		metrics:    obs.NewRegistry(),
		tenantTier: map[string]string{},
		estCache:   map[string]estEntry{},
	}
	s.rec = obs.NewFlightRecorder(cfg.TraceDepth, cfg.EventDepth)
	s.tracer = obs.NewTracer(cfg.TraceSampling, s.rec)
	evictions := s.metrics.Counter("server.plan_evictions")
	s.plans.SetEvictHook(func(key string, hits uint64) {
		evictions.Inc()
		s.rec.Eventf("evict", "plan evicted after %d hits (key %.24q…)", hits, key)
	})
	s.sched = sched.New(sched.Config{
		Workers:     cfg.Channels,
		QueueDepth:  cfg.QueueDepth,
		TenantQuota: cfg.TenantQuota,
		Tiers:       cfg.Tiers,
		Metrics:     s.metrics,
	})
	s.epoch = time.Now()
	s.dev = newDeviceTelemetry(cfg.Channels, cl.Channel(0).mod.NumBanks(), s.metrics)
	s.slos, err = newSLOTrackers(cfg.SLOs, s.metrics)
	if err != nil {
		s.sched.Close()
		cl.Close()
		return nil, err
	}
	s.pumpStop = make(chan struct{})
	s.pumpDone = make(chan struct{})
	go s.pump()
	return s, nil
}

// Config returns the server configuration (with defaults applied).
func (s *Server) Config() ServerConfig { return s.cfg }

// VerifiedPlans returns how many programs the IR verifier has checked
// and passed across the server's channels (0 unless
// ServerConfig.VerifyPlans is set).
func (s *Server) VerifiedPlans() int64 { return s.cl.VerifiedPlans() }

// Close stops admission, fails queued jobs with ErrServerClosed,
// waits for running jobs, stops the telemetry pump, and releases every
// channel.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.pumpStop)
		<-s.pumpDone
	})
	s.sched.Close()
	s.cl.Close()
}

// JobSpec carries a submission's QoS intent: who is submitting, under
// which declared tier, with what optional deadline and weight
// override. The zero value plus Tenant reproduces the legacy
// Submit/SubmitLazy behavior (default tier, no deadline).
type JobSpec struct {
	// Tenant identifies the submitter for fairness, quota, quantiles,
	// and billing.
	Tenant string
	// Tier names a ServerConfig.Tiers entry; empty or undeclared
	// resolves to the configured "default" tier, else an implicit
	// weight-1 default.
	Tier string
	// Deadline, when set, makes admission reject the job with
	// ErrDeadlineInfeasible if estimated queue wait plus modeled run
	// time cannot meet it — the job is never queued just to miss it.
	Deadline time.Time
	// Weight, when positive, overrides the tier's dispatch weight for
	// this tenant from this submission on.
	Weight float64
}

// AdmissionEstimate is what admission predicted for a job, surfaced in
// JobResult so callers can audit predicted against actual latency.
type AdmissionEstimate struct {
	// EstimatedWaitNs is the queue wait admission predicted (compare
	// with JobResult.QueueNs); ModeledNs the modeled run cost the job
	// was priced with — the exact cached-plan makespan on a plan-cache
	// hit, the static cost model's estimate on a cold shape.
	EstimatedWaitNs int64
	ModeledNs       float64
}

// JobResult is what a completed lazy job produced.
type JobResult struct {
	// Values holds one loaded result slice per submitted root
	// expression, in submission order. Nil for raw Submit jobs.
	Values [][]uint64
	// Batch is the modeled cost of the executed batch (zero if the
	// whole job folded away).
	Batch BatchStats
	// Compile reports what the compiler did — Compile.CacheHit tells
	// whether the job reused a cached plan.
	Compile CompileStats
	// Channel is the cluster channel the job ran on.
	Channel int
	// QueueNs and RunNs are the job's wall-clock queue wait and
	// execution time (monotonic, never negative).
	QueueNs, RunNs int64
	// TraceID identifies this job's span tree in Server.Traces() when
	// the job was sampled for tracing; 0 when it was not.
	TraceID uint64
	// Admission is what admission control predicted for this job at
	// submission time.
	Admission AdmissionEstimate
}

// Future is the caller's handle on a submitted job.
type Future struct {
	t    *sched.Ticket
	res  *JobResult
	once sync.Once
	err  error
}

// Done returns a channel closed when the job finishes.
func (f *Future) Done() <-chan struct{} { return f.t.Done() }

// Wait blocks until the job finishes and returns its result. On error
// (execution failure, cancellation, server close) the result is nil.
func (f *Future) Wait() (*JobResult, error) {
	f.once.Do(func() {
		f.err = f.t.Wait()
		f.res.Channel = f.t.Worker()
		f.res.QueueNs = f.t.QueueNs()
		f.res.RunNs = f.t.RunNs()
	})
	<-f.t.Done() // later callers of a shared Future still block
	if f.err != nil {
		return nil, f.err
	}
	return f.res, nil
}

// SubmitJob enqueues the expressions as one job under the spec's QoS
// intent: on whichever channel comes free, the graph compiles (or
// reuses a cached plan), Input payloads are stored, the batch
// executes, and every root's value is loaded into the JobResult. All
// storage the job touched is released before the future resolves —
// nothing outlives the request, which is what lets millions of
// requests stream through a fixed set of channels.
//
// Admission prices the job before queueing it: the expression graph's
// modeled critical path (exact scheduled makespan on a plan-cache
// hit, static cost model on a cold shape) feeds the scheduler's
// deadline and tier-backlog checks, and the resulting estimate is
// surfaced in JobResult.Admission. SubmitJob never blocks on a full
// queue; it fails immediately with a typed *AdmissionError (wrapping
// ErrQueueFull, ErrTenantQuota, or ErrDeadlineInfeasible) or the
// context's error. ctx may be nil (never cancels).
func (s *Server) SubmitJob(ctx context.Context, spec JobSpec, exprs ...*Expr) (*Future, error) {
	if len(exprs) == 0 {
		return nil, errorf("server: nothing to submit")
	}
	seen := map[*Expr]bool{}
	for _, e := range exprs {
		if err := checkServable(e, seen); err != nil {
			return nil, err
		}
	}
	// Best-effort pricing: a malformed expression (e.g. element-count
	// mismatch) keeps its contract of failing the future at run time —
	// it is admitted unpriced and rejected by the compiler as before.
	modeled, _ := s.estimateModeledNs(exprs)
	tenant := spec.Tenant
	s.noteTier(spec)
	res := &JobResult{}
	// A sampled job carries a trace whose root "job" span opened here at
	// admission; the queue span closes when a worker picks the job up,
	// so its duration is the admission-to-dispatch wait (sched's QueueNs
	// measured from the trace's own clock). A job canceled while still
	// queued never reaches the worker, so its unfinished trace is
	// dropped rather than recorded; the cancellation still lands in the
	// event ring below.
	tr := s.tracer.Start()
	if tr != nil {
		res.TraceID = tr.ID
	}
	qspan := tr.Begin("queue", 0)
	t, err := s.sched.SubmitRequest(ctx, sched.Request{
		Tenant: tenant, Tier: spec.Tier, Weight: spec.Weight,
		Deadline: spec.Deadline, ModeledNs: modeled,
	}, func(worker int, cancel <-chan struct{}) error {
		tr.End(qspan)
		at := s.dev.attrFor(worker)
		runStart := time.Now()
		err := s.runLazy(s.cl.Channel(worker), worker, cancel, exprs, res, tr, at)
		if err == nil {
			// Feed the executed batch's modeled DRAM time back into the
			// scheduler's per-tenant accounting, and bill the device
			// attribution to the tenant and the channel that ran it.
			s.sched.Observe(tenant, res.Batch.CriticalPathNs)
			s.dev.observeJob(tenant, worker, at, int64(time.Since(runStart)))
		} else {
			tr.SetErr(err.Error())
			s.rec.Eventf("error", "tenant %s: %v", tenant, err)
		}
		s.tracer.Finish(tr)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Admission = AdmissionEstimate{EstimatedWaitNs: t.EstimatedWaitNs(), ModeledNs: t.ModeledNs()}
	return &Future{t: t, res: res}, nil
}

// SubmitLazy enqueues the expressions as one job for the tenant under
// the default tier with no deadline.
//
// Deprecated: use SubmitJob with a JobSpec — this wrapper builds
// JobSpec{Tenant: tenant} and is retained for compatibility.
func (s *Server) SubmitLazy(ctx context.Context, tenant string, exprs ...*Expr) (*Future, error) {
	return s.SubmitJob(ctx, JobSpec{Tenant: tenant}, exprs...)
}

// SubmitFn enqueues a raw job under the spec's QoS intent: fn runs
// with exclusive use of one channel's System and the scheduler's
// cancellation signal (closed when ctx expires). It is the escape
// hatch for work the expression graph cannot phrase — multi-batch
// kernels, fault injection, experiments — under the same admission
// control and fairness as lazy jobs. Raw jobs carry no modeled cost
// estimate, so a deadline is checked against the estimated queue wait
// plus the scheduler's trailing average job cost. fn must release
// every vector it allocates before returning.
func (s *Server) SubmitFn(ctx context.Context, spec JobSpec, fn func(sys *System, cancel <-chan struct{}) error) (*Future, error) {
	if fn == nil {
		return nil, errorf("server: nil job")
	}
	tenant := spec.Tenant
	s.noteTier(spec)
	res := &JobResult{}
	tr := s.tracer.Start()
	if tr != nil {
		res.TraceID = tr.ID
	}
	qspan := tr.Begin("queue", 0)
	t, err := s.sched.SubmitRequest(ctx, sched.Request{
		Tenant: tenant, Tier: spec.Tier, Weight: spec.Weight, Deadline: spec.Deadline,
	}, func(worker int, cancel <-chan struct{}) error {
		tr.End(qspan)
		espan := tr.BeginOn("execute", 0, worker)
		// Raw jobs drive the System directly, so the finest attribution
		// available is the channel unit's stats delta across the call —
		// race-free because the worker owns the channel for the job's
		// duration.
		sys := s.cl.Channel(worker)
		before := sys.cu.Stats
		runStart := time.Now()
		err := fn(sys, cancel)
		wallNs := int64(time.Since(runStart))
		tr.End(espan)
		if err != nil {
			tr.SetErr(err.Error())
			s.rec.Eventf("error", "tenant %s: %v", tenant, err)
		} else {
			delta := sys.cu.Stats.Sub(before)
			// BusyNs accumulates batch critical paths, the same modeled
			// DRAM time lazy jobs feed back — keep both pipelines priced
			// in the same unit.
			s.sched.Observe(tenant, delta.BusyNs)
			s.dev.observeRaw(tenant, worker, delta, wallNs)
		}
		s.tracer.Finish(tr)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Admission = AdmissionEstimate{EstimatedWaitNs: t.EstimatedWaitNs(), ModeledNs: t.ModeledNs()}
	return &Future{t: t, res: res}, nil
}

// Submit enqueues a raw job for the tenant under the default tier
// with no deadline.
//
// Deprecated: use SubmitFn with a JobSpec — this wrapper builds
// JobSpec{Tenant: tenant} and is retained for compatibility.
func (s *Server) Submit(ctx context.Context, tenant string, fn func(sys *System, cancel <-chan struct{}) error) (*Future, error) {
	return s.SubmitFn(ctx, JobSpec{Tenant: tenant}, fn)
}

// estimateModeledNs prices a lazy submission before it is queued: the
// expression graph is built (no passes run), and its canonical key
// probes the plan cache without perturbing hit-rate or recency
// (PlanCache.Peek). A hit prices the job at the cached plan's
// scheduled makespan — exact for the plan that will actually run; a
// cold shape falls back to the makespan of the unoptimized graph in
// program order under the static cost model. Either way the cost
// model is upgraded to observed per-op latencies once the shape's
// profile has enough jobs (ProfileStore.ScheduleCost).
func (s *Server) estimateModeledNs(exprs []*Expr) (float64, error) {
	sys := s.cl.Channel(0)
	env, err := buildEnv(sys, nil, exprs)
	if err != nil {
		return 0, err
	}
	key := optsKey(CompileOptions{}) + env.g.CanonicalKey()
	cfg := planCfg(sys, nil)
	plan := s.plans.Peek(key)
	if plan != nil {
		s.estMu.Lock()
		if e, ok := s.estCache[key]; ok && e.plan == plan {
			s.estMu.Unlock()
			return e.ns, nil
		}
		s.estMu.Unlock()
	}
	cost := s.profiles.ScheduleCost(key, modelCost(cfg))
	if plan == nil {
		return env.g.EstimateMakespanNs(env.g.ProgramOrder(), cost, cfg.DRAM.Banks), nil
	}
	ns := plan.Graph.EstimateMakespanNs(plan.Sched, cost, cfg.DRAM.Banks)
	s.estMu.Lock()
	if len(s.estCache) >= estCacheCap {
		s.estCache = map[string]estEntry{}
	}
	s.estCache[key] = estEntry{plan: plan, ns: ns}
	s.estMu.Unlock()
	return ns, nil
}

// estEntry is one memoized admission price (see Server.estCache).
type estEntry struct {
	plan *graph.Plan
	ns   float64
}

// estCacheCap bounds the estimate memo; at the cap the whole memo is
// dropped and rebuilt (it repopulates in one submission per hot shape).
const estCacheCap = 1024

// noteTier remembers the tenant's tier assignment for the SLO
// evaluation loop (which boosts a breaching tenant's tier).
func (s *Server) noteTier(spec JobSpec) {
	tier := sched.ResolveTier(s.cfg.Tiers, spec.Tier)
	s.tierMu.Lock()
	s.tenantTier[spec.Tenant] = tier.Name
	// Unbounded tenant cardinality must not grow this map without
	// bound (same rationale as sched's tenant-state cap); an evicted
	// tenant that returns is simply re-noted on its next submission.
	if len(s.tenantTier) > 2*tenantTierCap {
		for name := range s.tenantTier {
			if name == spec.Tenant {
				continue
			}
			delete(s.tenantTier, name)
			if len(s.tenantTier) <= tenantTierCap {
				break
			}
		}
	}
	s.tierMu.Unlock()
}

// tenantTierCap bounds the tenant→tier memory (see noteTier).
const tenantTierCap = 4096

// tierOfTenant returns the tier the tenant last submitted under (the
// default tier name for tenants never seen).
func (s *Server) tierOfTenant(tenant string) string {
	s.tierMu.Lock()
	defer s.tierMu.Unlock()
	if t, ok := s.tenantTier[tenant]; ok {
		return t
	}
	return sched.DefaultTierName
}

// checkServable rejects expressions bound to pre-allocated storage:
// a server job must be runnable on any channel.
func checkServable(e *Expr, seen map[*Expr]bool) error {
	if e == nil {
		return errorf("server: nil expression")
	}
	if seen[e] {
		return nil
	}
	seen[e] = true
	switch e.kind {
	case exprLeaf, exprShardLeaf:
		return errorf("server: expression is bound to a pre-allocated vector; server jobs must use Input data leaves so they can run on any free channel")
	case exprOp:
		for _, a := range e.args {
			if err := checkServable(a, seen); err != nil {
				return err
			}
		}
	}
	return nil
}

// runLazy is the per-job serving pipeline on one channel: plan (cache
// hit, cold compile, or profile-guided recompile), bind payloads,
// execute with preemptive cancellation, fold the measured per-op
// latencies into the shape's profile, load every root, release
// everything. tr (nil when the job is unsampled) receives the
// pipeline's span tree: compile{cache-lookup[, schedule], lower} →
// prepare{resolve} → execute[worker]{run} → gather.
func (s *Server) runLazy(sys *System, worker int, cancel <-chan struct{}, exprs []*Expr, res *JobResult, tr *obs.Trace, at *ctrl.Attribution) error {
	cspan := tr.Begin("compile", 0)
	env, plan, cst, err := planExprs(sys, nil, CompileOptions{}, exprs, s.plans, s.profiles, tr, cspan)
	if err != nil {
		tr.End(cspan)
		return err
	}
	res.Compile = cst
	if cst.Recompiled {
		s.rec.Eventf("recompile", "profile-guided recompile after %d jobs (key %.24q…)", cst.ProfileJobs, env.key)
	}
	lspan := tr.Begin("lower", cspan)
	lw, err := lowerPlan(env, plan, exprs,
		func(width int) (graphObj, error) { return sys.allocVector(env.n, width, 0) },
		func(id graph.NodeID) graphObj { return nil }, // no vector leaves: checkServable rejected them
		leafDataOf(env),
	)
	tr.End(lspan)
	tr.End(cspan)
	if err != nil {
		return err
	}
	// Results are NOT published onto the expressions (publish): the
	// same expression template may be in flight on several channels at
	// once, and every vector below is released before the future
	// resolves anyway.
	defer func() {
		lw.freeTemps()
		for _, r := range lw.results {
			if r.owned {
				r.obj.Free()
			}
		}
	}()
	if err := sys.verifyLowered(lw); err != nil {
		return err
	}
	if len(lw.prog) > 0 {
		pspan := tr.Begin("prepare", 0)
		pp, err := sys.prepareProgramTraced(lw.prog, tr, pspan)
		tr.End(pspan)
		if err != nil {
			return err
		}
		espan := tr.BeginOn("execute", 0, worker)
		rspan := tr.BeginOn("run", espan, worker)
		st, opNs, err := sys.runPreparedAttr(pp, cancel, at)
		tr.End(rspan)
		tr.End(espan)
		if err != nil {
			return err
		}
		s.profiles.Record(env.key, plan, opNs, modelCost(sys.cfg))
		res.Batch = toBatchStats(st)
	}
	gspan := tr.Begin("gather", 0)
	res.Values = make([][]uint64, len(lw.results))
	for i, r := range lw.results {
		vals, err := r.obj.Load()
		if err != nil {
			res.Values = nil
			tr.End(gspan)
			return err
		}
		res.Values[i] = vals
	}
	tr.End(gspan)
	return nil
}

// TenantServerStats is one tenant's serving counters.
type TenantServerStats struct {
	Submitted, Completed, Failed, Rejected, Canceled uint64
	Queued, Running                                  int
	// BusyNs is cumulative wall time this tenant's jobs spent running;
	// WaitNs cumulative time queued.
	BusyNs, WaitNs int64
	// ModeledNs is the cumulative modeled DRAM time (batch critical
	// path) of the tenant's completed jobs — the fed-back execution
	// stats, which price capacity in simulated-hardware time rather
	// than host wall time.
	ModeledNs float64
	// Utilization is the tenant's share of all execution time the
	// server has performed so far (0 when nothing has run).
	Utilization float64
	// BilledNs/BilledEnergyPJ are the device-attribution pipeline's
	// cumulative bills for the tenant (tenant.dram_ns / tenant.energy_pj
	// series): modeled DRAM time and energy its jobs consumed. BilledNs
	// tracks ModeledNs — the two are computed by independent pipelines
	// and cross-checked by the -serve demo.
	BilledNs       float64
	BilledEnergyPJ float64
	// Queue/Run latency quantiles from the tenant's log-scale
	// histograms (sched.Ticket.QueueNs/RunNs observed per finished
	// job): honest per-tenant tail latency, bounded relative error 1/8.
	// Zero until the tenant's first job finishes.
	QueueP50Ns, QueueP99Ns, QueueP999Ns int64
	RunP50Ns, RunP99Ns, RunP999Ns       int64
}

// TierServerStats is one QoS tier's serving counters: the scheduler's
// per-tier dispatch/rejection/preemption counts, latency quantiles
// merged bucket-wise across the tier's member tenants, and the tier's
// achieved share of all modeled DRAM time the device has executed —
// the number to compare against the configured weight ratio.
type TierServerStats struct {
	Weight   float64
	Priority int
	// Tenants is how many tenants currently resolve to this tier.
	Tenants         int
	Queued, Running int
	// Dispatched counts jobs dispatched for this tier's tenants;
	// Rejected its admission rejections (all reasons); DeadlineRejects
	// the subset rejected with ErrDeadlineInfeasible; Preempts
	// dispatches the tier took past queued lower-priority work while
	// its SLO burn was active.
	Dispatched, Rejected, DeadlineRejects, Preempts uint64
	// ModeledNs is the cumulative modeled DRAM time charged to the
	// tier at dispatch; ShareOfDevice its fraction of the modeled time
	// all tiers consumed (0 when nothing has run).
	ModeledNs     float64
	ShareOfDevice float64
	// Merged queue/run latency quantiles over the tier's tenants.
	// When every tenant shares one tier these equal the
	// whole-population quantiles exactly (same observations, same
	// bucket arithmetic).
	QueueP50Ns, QueueP99Ns, QueueP999Ns int64
	RunP50Ns, RunP99Ns, RunP999Ns       int64
}

// ServerStats is a point-in-time snapshot of the serving layer.
type ServerStats struct {
	Channels int
	// QueueDepth is the current number of queued jobs; Running the
	// number executing right now.
	QueueDepth, Running                              int
	Submitted, Completed, Failed, Rejected, Canceled uint64
	// Cache reports the shared compiled-plan cache (cost-LRU eviction:
	// see Cache.Policy, Evicted, EvictedHot).
	Cache PlanCacheStats
	// Profile reports the shape-profile aggregation driving
	// profile-guided recompiles.
	Profile ProfileStats
	Tenants map[string]TenantServerStats
	// Tiers holds one entry per declared QoS tier (plus any tier that
	// has seen traffic, including the implicit default).
	Tiers map[string]TierServerStats
	// Rates reports trailing jobs/sec, rejected/sec, and energy/sec over
	// the 1s/10s/60s windows (zero until the telemetry pump has a
	// baseline sample).
	Rates []WindowRates
}

// CacheHitRate returns the plan cache's hit rate.
func (s ServerStats) CacheHitRate() float64 { return s.Cache.HitRate() }

// Stats returns a snapshot of queue depth, admission counters, plan
// cache hit rate, and per-tenant utilization.
func (s *Server) Stats() ServerStats {
	ss := s.sched.Stats()
	st := ServerStats{
		Channels:   s.cfg.Channels,
		QueueDepth: ss.Queued, Running: ss.Running,
		Submitted: ss.Submitted, Completed: ss.Completed, Failed: ss.Failed,
		Rejected: ss.Rejected, Canceled: ss.Canceled,
		Cache:   cacheStats(s.plans),
		Profile: profileStats(s.profiles),
		Tenants: make(map[string]TenantServerStats, len(ss.Tenants)),
		Tiers:   make(map[string]TierServerStats, len(ss.Tiers)),
		Rates:   s.dev.rates(s.nowNs(), ss.Completed, ss.Rejected),
	}
	var totalTierModeled float64
	for _, ts := range ss.Tiers {
		totalTierModeled += ts.ModeledNs
	}
	for name, ts := range ss.Tiers {
		t := TierServerStats{
			Weight: ts.Weight, Priority: ts.Priority, Tenants: ts.Tenants,
			Queued: ts.Queued, Running: ts.Running,
			Dispatched: ts.Dispatched, Rejected: ts.Rejected,
			DeadlineRejects: ts.DeadlineRejects, Preempts: ts.Preempts,
			ModeledNs:  ts.ModeledNs,
			QueueP50Ns: ts.QueueP50Ns, QueueP99Ns: ts.QueueP99Ns, QueueP999Ns: ts.QueueP999Ns,
			RunP50Ns: ts.RunP50Ns, RunP99Ns: ts.RunP99Ns, RunP999Ns: ts.RunP999Ns,
		}
		if totalTierModeled > 0 {
			t.ShareOfDevice = ts.ModeledNs / totalTierModeled
		}
		st.Tiers[name] = t
	}
	bills := s.dev.snapshot().Tenants
	var totalBusy int64
	for _, ts := range ss.Tenants {
		totalBusy += ts.BusyNs
	}
	for name, ts := range ss.Tenants {
		t := TenantServerStats{
			Submitted: ts.Submitted, Completed: ts.Completed, Failed: ts.Failed,
			Rejected: ts.Rejected, Canceled: ts.Canceled,
			Queued: ts.Queued, Running: ts.Running,
			BusyNs: ts.BusyNs, WaitNs: ts.WaitNs,
			ModeledNs:  ts.ModeledNs,
			QueueP50Ns: ts.QueueP50Ns, QueueP99Ns: ts.QueueP99Ns, QueueP999Ns: ts.QueueP999Ns,
			RunP50Ns: ts.RunP50Ns, RunP99Ns: ts.RunP99Ns, RunP999Ns: ts.RunP999Ns,
		}
		if totalBusy > 0 {
			t.Utilization = float64(ts.BusyNs) / float64(totalBusy)
		}
		if b, ok := bills[name]; ok {
			t.BilledNs = b.DRAMNs
			t.BilledEnergyPJ = b.EnergyPJ
		}
		st.Tenants[name] = t
	}
	return st
}
