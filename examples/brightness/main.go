// Brightness: the paper's image-processing kernel, written directly
// against the public API — add a delta to every pixel with saturation,
// using in-DRAM addition, comparison and predication (if_else).
package main

import (
	"fmt"
	"log"

	"simdram"
	"simdram/internal/workload"
)

func main() {
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	img := workload.NewImage(320, 240, 7)
	const delta = 70
	n := len(img.Pixels)

	// Pixels staged at 16 bits so pixel+delta cannot wrap before the
	// saturation check.
	px, err := sys.AllocVector(n, 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := px.Store(img.Pixels); err != nil {
		log.Fatal(err)
	}
	constVec := func(v uint64) *simdram.Vector {
		vec, err := sys.AllocVector(n, 16)
		if err != nil {
			log.Fatal(err)
		}
		data := make([]uint64, n)
		for i := range data {
			data[i] = v
		}
		if err := vec.Store(data); err != nil {
			log.Fatal(err)
		}
		return vec
	}
	dv := constVec(delta)
	c255 := constVec(255)

	sum, err := sys.AllocVector(n, 16)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run("addition", sum, px, dv); err != nil {
		log.Fatal(err)
	}
	over, err := sys.AllocVector(n, 1) // 1-bit predicate: sum > 255
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run("greater", over, sum, c255); err != nil {
		log.Fatal(err)
	}
	out, err := sys.AllocVector(n, 16)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sys.Run("if_else", out, c255, sum, over) // over ? 255 : sum
	if err != nil {
		log.Fatal(err)
	}

	result, err := out.Load()
	if err != nil {
		log.Fatal(err)
	}
	saturated := 0
	for i, p := range img.Pixels {
		want := p + delta
		if want > 255 {
			want = 255
			saturated++
		}
		if result[i] != want {
			log.Fatalf("pixel %d: got %d want %d", i, result[i], want)
		}
	}
	fmt.Printf("brightened %dx%d image by +%d in DRAM: %d pixels saturated, verified all\n",
		img.W, img.H, delta, saturated)
	fmt.Printf("last op: %.1f µs, %.2f µJ, %d commands\n", st.LatencyNs/1e3, st.EnergyPJ/1e6, st.Commands)
	total := sys.SystemStats()
	fmt.Printf("session: %d commands, %.2f µJ total DRAM energy\n", total.Commands, total.EnergyPJ/1e6)
}
