// customop demonstrates SIMDRAM's core flexibility claim: new in-DRAM
// operations are circuits plus a golden model — no hardware changes.
//
// We define |a−b| (absolute difference) as a single fused operation and
// compare it against composing the same function from four built-ins.
// The measured result is a finding in itself: command counts come out
// nearly identical, because the code generator's MajCopy fusion already
// makes each built-in's copy-out almost free and data-row reads cost the
// same as compute-row reads. The custom operation's win is therefore
// programmability, not commands: one bbop instead of four, no
// intermediate vectors (3 fewer allocations, 33 fewer rows held live),
// and one golden model to verify against.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simdram"
)

func main() {
	// Define the fused operation once. Builder helpers give word-level
	// arithmetic; the framework handles MAJ/NOT synthesis, row
	// allocation, and μProgram generation.
	err := simdram.DefineOperation(simdram.OperationSpec{
		Name:  "absdiff",
		Arity: 2,
		Build: func(b *simdram.Builder, width int) error {
			a := b.Operand("a", width)
			c := b.Operand("b", width)
			ge := b.GreaterEq(a, c)
			b.Output(b.Select(ge, b.Sub(a, c), b.Sub(c, a)), "y")
			return nil
		},
		Golden: func(args []uint64, width int) uint64 {
			mask := uint64(1)<<uint(width) - 1
			x, y := args[0]&mask, args[1]&mask
			if x >= y {
				return x - y
			}
			return y - x
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	const n, w = 100_000, 16
	rng := rand.New(rand.NewSource(5))
	av := make([]uint64, n)
	bv := make([]uint64, n)
	for i := range av {
		av[i] = rng.Uint64() & 0xFFFF
		bv[i] = rng.Uint64() & 0xFFFF
	}
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, w)
	a.Store(av)
	b.Store(bv)

	// Fused: one operation.
	fusedDst, _ := sys.AllocVector(n, w)
	fusedStats, err := sys.Run("absdiff", fusedDst, a, b)
	if err != nil {
		log.Fatal(err)
	}

	// Composed: the same function from built-ins. |a-b| via two
	// subtractions and a predicated select — every intermediate is a
	// full vector in data rows.
	diffAB, _ := sys.AllocVector(n, w)
	diffBA, _ := sys.AllocVector(n, w)
	pred, _ := sys.AllocVector(n, 1)
	composedDst, _ := sys.AllocVector(n, w)
	var composedStats simdram.Stats
	for _, step := range []struct {
		op   string
		dst  *simdram.Vector
		srcs []*simdram.Vector
	}{
		{"subtraction", diffAB, []*simdram.Vector{a, b}},
		{"subtraction", diffBA, []*simdram.Vector{b, a}},
		{"greater_equal", pred, []*simdram.Vector{a, b}},
		{"if_else", composedDst, []*simdram.Vector{diffAB, diffBA, pred}},
	} {
		st, err := sys.Run(step.op, step.dst, step.srcs...)
		if err != nil {
			log.Fatal(err)
		}
		composedStats.Commands += st.Commands
		composedStats.LatencyNs += st.LatencyNs
		composedStats.EnergyPJ += st.EnergyPJ
	}

	// Verify both against each other and the golden model.
	fv, _ := fusedDst.Load()
	cv, _ := composedDst.Load()
	for i := range fv {
		want, _ := simdram.Golden("absdiff", w, av[i], bv[i])
		if fv[i] != want || cv[i] != want {
			log.Fatalf("element %d: fused %d composed %d want %d", i, fv[i], cv[i], want)
		}
	}

	fmt.Printf("|a-b| over %d 16-bit elements, both paths verified\n\n", n)
	fmt.Printf("              commands   latency      energy\n")
	fmt.Printf("fused op      %8d  %8.1fµs  %8.2fµJ\n",
		fusedStats.Commands, fusedStats.LatencyNs/1e3, fusedStats.EnergyPJ/1e6)
	fmt.Printf("4 built-ins   %8d  %8.1fµs  %8.2fµJ\n",
		composedStats.Commands, composedStats.LatencyNs/1e3, composedStats.EnergyPJ/1e6)
	fmt.Printf("command ratio %.2f× (≈1: MajCopy fusion already makes composition cheap)\n",
		float64(composedStats.Commands)/float64(fusedStats.Commands))
	fmt.Println("\nthe custom op's win: 1 bbop instead of 4, and no intermediate vectors")
	fmt.Printf("(the composed path held 3 extra vectors = %d extra DRAM rows live)\n", 2*w+1)
}
