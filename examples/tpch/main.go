// TPC-H: the paper's database kernel — a Q6-style selective aggregation
// where the five-way predicate, the N-input AND, the revenue multiply
// and the predication all execute in DRAM; only the final scalar sum
// runs on the host.
package main

import (
	"fmt"
	"log"

	"simdram/internal/kernels"
	"simdram/internal/workload"

	"simdram"
)

func main() {
	cfg := simdram.DefaultConfig()
	sys, err := simdram.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	table := workload.NewLineItem(200_000, 11)
	params := kernels.DefaultQ6()

	revenue, st, err := kernels.TPCHQ6SIMDRAM(sys, table, params)
	if err != nil {
		log.Fatal(err)
	}
	want := kernels.TPCHQ6Ref(table, params)
	if revenue != want {
		log.Fatalf("revenue mismatch: dram=%d host=%d", revenue, want)
	}
	fmt.Printf("TPC-H Q6 over %d rows\n", table.N)
	fmt.Printf("predicate: shipdate ∈ [%d,%d), discount ∈ [%d,%d], quantity < %d\n",
		params.DateLo, params.DateHi, params.DiscountLo, params.DiscountHi, params.QuantityLt)
	fmt.Printf("revenue = %d (matches the host reference)\n", revenue)
	fmt.Printf("in-DRAM cost: %d commands, %.1f µs, %.2f µJ\n",
		st.Commands, st.LatencyNs/1e3, st.EnergyPJ/1e6)
}
