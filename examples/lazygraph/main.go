// Lazy expression graphs: describe a whole computation as vector
// expressions, and let the graph compiler fold constants, merge common
// subexpressions, schedule by measured per-op cost, and pack
// temporaries into reused DRAM rows — then execute it as one batched
// bbop program.
//
// The workload is a per-lane "thresholded blend": for two sensor
// channels x and y, compute
//
//	diff  = max(x, y) - min(x, y)        // |x - y| without sign math
//	hot   = diff > 64                    // 1-bit predicate
//	blend = hot ? diff : (x + y) / 2     // per-lane select
//
// Note max(x,y) and min(x,y) each appear once here but the averages
// reuse x + y — written twice below, merged by CSE at compile time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simdram"
)

func main() {
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const n, width = 50_000, 8
	rng := rand.New(rand.NewSource(1))
	dataX := make([]uint64, n)
	dataY := make([]uint64, n)
	for i := range dataX {
		dataX[i] = uint64(rng.Uint32()) & 0xFF
		dataY[i] = uint64(rng.Uint32()) & 0xFF
	}
	vx, err := sys.AllocVector(n, width)
	if err != nil {
		log.Fatal(err)
	}
	vy, err := sys.AllocVector(n, width)
	if err != nil {
		log.Fatal(err)
	}
	if err := vx.Store(dataX); err != nil {
		log.Fatal(err)
	}
	if err := vy.Store(dataY); err != nil {
		log.Fatal(err)
	}

	// Build the graph: no DRAM work happens here.
	x, y := sys.Lazy(vx), sys.Lazy(vy)
	diff := x.Max(y).Sub(x.Min(y))
	hot := diff.Greater(simdram.Scalar(64, width))
	// x.Add(y) is written twice — once here, once in the second root —
	// and compiled once.
	avg := x.Add(y).ShiftRight()
	blend := hot.IfElse(diff, avg)
	sum := x.Add(y)

	// Compile to inspect what the optimizer did, then execute the batch.
	cp, err := sys.Compile(blend, sum)
	if err != nil {
		log.Fatal(err)
	}
	st := cp.Stats()
	fmt.Printf("compiled %d-node graph: %d instructions, %d CSE-merged, %d temp rows in %d reused slots (naive: %d rows)\n",
		st.Nodes, st.Instructions, st.CSEEliminated, st.TempRowsPooled, st.TempSlots, st.TempRowsNaive)
	bst, err := cp.Execute()
	if err != nil {
		log.Fatal(err)
	}
	cp.Free()
	fmt.Printf("executed as one batch: %d DRAM commands, %.1f µs critical path (%.2f× overlap vs serial issue)\n",
		bst.Commands, bst.CriticalPathNs/1e3, bst.Speedup())

	got, err := blend.Result().Load()
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		x8, y8 := dataX[i], dataY[i]
		d := x8 - y8
		if y8 > x8 {
			d = y8 - x8
		}
		want := (x8 + y8) & 0xFF >> 1
		if d > 64 {
			want = d
		}
		if got[i] != want {
			log.Fatalf("element %d: got %d, want %d (x=%d y=%d)", i, got[i], want, x8, y8)
		}
	}
	fmt.Printf("verified %d elements of hot?diff:avg against the host computation\n", n)
	blend.Result().Free()
	sum.Result().Free()
}
