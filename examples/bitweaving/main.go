// BitWeaving: the paper's column-scan kernel — SIMDRAM's vertical layout
// is BitWeaving/V in hardware, so a k-bit predicate scan over millions
// of codes is a k-step in-DRAM comparison.
package main

import (
	"fmt"
	"log"

	"simdram/internal/kernels"
	"simdram/internal/workload"

	"simdram"
)

func main() {
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	const n, bits = 500_000, 4
	codes := workload.Codes(n, bits, 21)

	count, st, err := kernels.BitWeavingLtSIMDRAM(sys, codes, 9, bits)
	if err != nil {
		log.Fatal(err)
	}
	if want := kernels.BitWeavingLtRef(codes, 9); count != want {
		log.Fatalf("scan mismatch: dram=%d host=%d", count, want)
	}
	fmt.Printf("BitWeaving scan: %d %d-bit codes, predicate v < 9\n", n, bits)
	fmt.Printf("matches: %d (verified)\n", count)
	fmt.Printf("cost: %d commands, %.1f µs, %.2f µJ\n", st.Commands, st.LatencyNs/1e3, st.EnergyPJ/1e6)

	between, st2, err := kernels.BitWeavingBetweenSIMDRAM(sys, codes, 4, 11, bits)
	if err != nil {
		log.Fatal(err)
	}
	if want := kernels.BitWeavingBetweenRef(codes, 4, 11); between != want {
		log.Fatalf("range scan mismatch: dram=%d host=%d", between, want)
	}
	fmt.Printf("range scan 4 ≤ v < 11: %d matches, %.1f µs\n", between, st2.LatencyNs/1e3)
}
