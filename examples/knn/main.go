// kNN: the paper's machine-learning kernel — classify digits by nearest
// neighbor with all L1 distance arithmetic (subtract, abs, accumulate)
// running in DRAM across every training point at once.
package main

import (
	"fmt"
	"log"

	"simdram/internal/kernels"
	"simdram/internal/workload"

	"simdram"
)

func main() {
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	const trainN, queryN, dims = 2000, 20, 32
	all, labels := workload.Digits(trainN+queryN, dims, 3)
	train, trainLabels := all[:trainN], labels[:trainN]
	queries, queryLabels := all[trainN:], labels[trainN:]

	correct := 0
	var total simdram.Stats
	for q, query := range queries {
		label, st, err := kernels.KNNClassify(sys, train, trainLabels, query)
		if err != nil {
			log.Fatal(err)
		}
		total.Commands += st.Commands
		total.LatencyNs += st.LatencyNs
		total.EnergyPJ += st.EnergyPJ
		if label == queryLabels[q] {
			correct++
		}
	}
	fmt.Printf("kNN: %d training digits × %d dims, %d queries\n", trainN, dims, queryN)
	fmt.Printf("accuracy: %d/%d\n", correct, queryN)
	fmt.Printf("in-DRAM distance cost: %d commands, %.2f ms, %.1f µJ\n",
		total.Commands, total.LatencyNs/1e6, total.EnergyPJ/1e6)
}
