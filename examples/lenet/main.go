// LeNet: the paper's neural-network kernel — quantized convolution,
// ReLU, max-pooling and a fully connected classifier with all
// multiply-accumulate arithmetic in DRAM.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simdram/internal/kernels"

	"simdram"
)

func main() {
	cfg := simdram.DefaultConfig()
	sys, err := simdram.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	in := kernels.NewFeatureMap(1, 14, 14)
	for i := range in.Data[0] {
		in.Data[0][i] = uint64(rng.Intn(256))
	}
	weights := kernels.LeNetWeights{
		Conv1: randomConv(rng, 2, 1, 3),
		Conv2: randomConv(rng, 3, 2, 3),
		FC:    randomFC(rng, 10, 3*2*2),
		Shift: 5,
	}

	logits, st, err := kernels.LeNetSIMDRAM(sys, in, weights)
	if err != nil {
		log.Fatal(err)
	}
	want := kernels.LeNetRef(in, weights)
	for i := range want {
		if logits[i] != want[i] {
			log.Fatalf("logit %d: dram=%d host=%d", i, logits[i], want[i])
		}
	}
	fmt.Println("LeNet-style network: conv(1→2,3×3) → pool → conv(2→3,3×3) → pool → fc(12→10)")
	fmt.Printf("logits: %v\n", logits)
	fmt.Printf("prediction: class %d (bit-exact vs the host reference)\n", kernels.Argmax(logits))
	fmt.Printf("in-DRAM cost: %d commands, %.2f ms, %.1f µJ\n",
		st.Commands, st.LatencyNs/1e6, st.EnergyPJ/1e6)
}

func randomConv(rng *rand.Rand, outC, inC, k int) kernels.ConvWeights {
	w := kernels.ConvWeights{OutC: outC, InC: inC, K: k, W: make([][][]int, outC)}
	for oc := range w.W {
		w.W[oc] = make([][]int, inC)
		for ic := range w.W[oc] {
			taps := make([]int, k*k)
			for i := range taps {
				taps[i] = rng.Intn(15) - 7
			}
			w.W[oc][ic] = taps
		}
	}
	return w
}

func randomFC(rng *rand.Rand, out, in int) [][]int {
	w := make([][]int, out)
	for o := range w {
		w[o] = make([]int, in)
		for i := range w[o] {
			w[o][i] = rng.Intn(15) - 7
		}
	}
	return w
}
