// Quickstart: allocate vectors, store data (transposed to the vertical
// layout automatically), run in-DRAM operations, and load results back.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simdram"
)

func main() {
	// A laptop-friendly SIMDRAM system: 4 banks × 4 subarrays with 8192
	// bitlines each — 32768 SIMD lanes computing in parallel.
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	const n, width = 100_000, 32
	rng := rand.New(rand.NewSource(1))
	dataA := make([]uint64, n)
	dataB := make([]uint64, n)
	for i := range dataA {
		dataA[i] = uint64(rng.Uint32())
		dataB[i] = uint64(rng.Uint32())
	}

	a, err := sys.AllocVector(n, width)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.AllocVector(n, width)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := sys.AllocVector(n, width)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Store(dataA); err != nil {
		log.Fatal(err)
	}
	if err := b.Store(dataB); err != nil {
		log.Fatal(err)
	}

	// One bbop: 100k additions executed entirely inside DRAM subarrays.
	st, err := sys.Run("addition", sum, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("addition: %d DRAM commands, %.1f µs, %.2f µJ\n",
		st.Commands, st.LatencyNs/1e3, st.EnergyPJ/1e6)

	// A second operation chained on the in-DRAM result: max(sum, b).
	m, err := sys.AllocVector(n, width)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run("max", m, sum, b); err != nil {
		log.Fatal(err)
	}

	got, err := m.Load()
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		s := (dataA[i] + dataB[i]) & 0xFFFFFFFF
		want := s
		if dataB[i] > s {
			want = dataB[i]
		}
		if got[i] != want {
			log.Fatalf("element %d: got %d want %d", i, got[i], want)
		}
	}
	fmt.Printf("verified %d elements of max(a+b, b) against the host computation\n", n)
}
