package simdram

import (
	"math/rand"
	"testing"
)

func TestRowAllocFirstFit(t *testing.T) {
	a := newRowAlloc(100)
	s1, ok := a.alloc(30)
	if !ok || s1 != 0 {
		t.Fatalf("first alloc at %d, want 0", s1)
	}
	s2, _ := a.alloc(30)
	s3, _ := a.alloc(30)
	if s2 != 30 || s3 != 60 {
		t.Fatalf("sequential allocs at %d, %d", s2, s3)
	}
	if _, ok := a.alloc(20); ok {
		t.Fatal("allocation beyond capacity must fail")
	}
	a.release(s2, 30)
	s4, ok := a.alloc(20)
	if !ok || s4 != 30 {
		t.Fatalf("freed hole should be reused at 30, got %d", s4)
	}
}

func TestRowAllocMergeAndTail(t *testing.T) {
	a := newRowAlloc(100)
	s1, _ := a.alloc(40)
	s2, _ := a.alloc(40)
	if a.tailFree() != 20 {
		t.Fatalf("tailFree = %d, want 20", a.tailFree())
	}
	a.release(s2, 40)
	if a.tailFree() != 60 {
		t.Fatalf("tailFree after release = %d, want 60 (merged)", a.tailFree())
	}
	a.release(s1, 40)
	if a.tailFree() != 100 || a.inUse() != 0 {
		t.Fatalf("full release should merge everything: tail=%d used=%d", a.tailFree(), a.inUse())
	}
	if len(a.free) != 1 {
		t.Fatalf("free list should be a single interval, have %d", len(a.free))
	}
}

func TestRowAllocRandomizedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := newRowAlloc(512)
	type block struct{ start, size int }
	var live []block
	for step := 0; step < 2000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := 1 + rng.Intn(48)
			if start, ok := a.alloc(size); ok {
				for _, b := range live {
					if start < b.start+b.size && b.start < start+size {
						t.Fatalf("overlap: [%d,%d) with [%d,%d)", start, start+size, b.start, b.start+b.size)
					}
				}
				live = append(live, block{start, size})
			}
		} else {
			i := rng.Intn(len(live))
			a.release(live[i].start, live[i].size)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		used := 0
		for _, b := range live {
			used += b.size
		}
		if a.inUse() != used {
			t.Fatalf("accounting drift: alloc says %d, live blocks %d", a.inUse(), used)
		}
	}
}

// TestRowAllocFreeListProperty drives random alloc/release sequences
// and checks the free list's structural invariants directly after every
// step: intervals sorted by start, strictly disjoint, fully merged (no
// two adjacent intervals), inside [0, limit), and conserving total rows
// together with the live allocations.
func TestRowAllocFreeListProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		limit := 32 + rng.Intn(224)
		a := newRowAlloc(limit)
		type block struct{ start, size int }
		var live []block
		for step := 0; step < 300; step++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				size := 1 + rng.Intn(24)
				if start, ok := a.alloc(size); ok {
					live = append(live, block{start, size})
				}
			} else {
				// Release in random order so merges happen on both sides.
				i := rng.Intn(len(live))
				a.release(live[i].start, live[i].size)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			freeRows := 0
			for i, iv := range a.free {
				if iv[1] <= 0 {
					t.Fatalf("trial %d step %d: empty interval %v", trial, step, iv)
				}
				if iv[0] < 0 || iv[0]+iv[1] > limit {
					t.Fatalf("trial %d step %d: interval %v outside [0,%d)", trial, step, iv, limit)
				}
				if i > 0 {
					prev := a.free[i-1]
					if prev[0]+prev[1] > iv[0] {
						t.Fatalf("trial %d step %d: unsorted/overlapping free list %v", trial, step, a.free)
					}
					if prev[0]+prev[1] == iv[0] {
						t.Fatalf("trial %d step %d: unmerged adjacent intervals %v", trial, step, a.free)
					}
				}
				freeRows += iv[1]
			}
			liveRows := 0
			for _, b := range live {
				liveRows += b.size
			}
			if freeRows+liveRows != limit {
				t.Fatalf("trial %d step %d: %d free + %d live != %d total", trial, step, freeRows, liveRows, limit)
			}
		}
	}
}
