package simdram_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"simdram"
	"simdram/internal/isa"
	"simdram/internal/ops"
)

func bbop(code ops.Code, dst, a, b *simdram.Vector) isa.Instruction {
	return isa.Instruction{
		Op:    isa.FromOp(code),
		Dst:   dst.Handle(),
		Src:   [3]uint16{a.Handle(), b.Handle()},
		Size:  uint32(dst.Len()),
		Width: uint8(a.Width()),
	}
}

func storeRandom(t *testing.T, rng *rand.Rand, v *simdram.Vector) []uint64 {
	t.Helper()
	data := make([]uint64, v.Len())
	for i := range data {
		data[i] = uint64(rng.Uint32()) & ((1 << v.Width()) - 1)
	}
	if err := v.Store(data); err != nil {
		t.Fatal(err)
	}
	return data
}

func mustLoad(t *testing.T, v *simdram.Vector) []uint64 {
	t.Helper()
	got, err := v.Load()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestExecBatchMatchesSerial runs the same hazard-rich program through
// ExecBatch on one system and through a serial Exec loop on an
// identically-seeded second system, and requires identical results.
func TestExecBatchMatchesSerial(t *testing.T) {
	build := func() (*simdram.System, isa.Program, []*simdram.Vector) {
		sys, err := simdram.New(simdram.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n, w := 1024, 16
		rng := rand.New(rand.NewSource(42))
		alloc := func() *simdram.Vector {
			v, err := sys.AllocVector(n, w)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		a, b := alloc(), alloc()
		t1, t2, t3, t4 := alloc(), alloc(), alloc(), alloc()
		storeRandom(t, rng, a)
		storeRandom(t, rng, b)
		prog := isa.Program{
			bbop(ops.OpAdd, t1, a, b),   // t1 = a+b
			bbop(ops.OpSub, t2, a, b),   // t2 = a-b        (independent of t1)
			bbop(ops.OpAdd, t3, t1, t2), // t3 = t1+t2     (RAW on both)
			bbop(ops.OpSub, t4, t3, a),  // t4 = t3-a      (RAW chain)
			bbop(ops.OpAdd, t1, t4, b),  // t1 = t4+b      (WAW/WAR on t1)
		}
		return sys, prog, []*simdram.Vector{t1, t2, t3, t4}
	}

	sysBatch, prog, outsBatch := build()
	defer sysBatch.Close()
	st, err := sysBatch.ExecBatch(prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != int64(len(prog)) {
		t.Errorf("Instructions = %d, want %d", st.Instructions, len(prog))
	}
	if st.CriticalPathNs <= 0 || st.BusyNs < st.CriticalPathNs {
		t.Errorf("latency accounting broken: busy %f, critical path %f", st.BusyNs, st.CriticalPathNs)
	}

	sysSerial, prog2, outsSerial := build()
	defer sysSerial.Close()
	var busySerial float64
	for i, in := range prog2 {
		st, err := sysSerial.Exec(in)
		if err != nil {
			t.Fatalf("serial instruction %d: %v", i, err)
		}
		busySerial += st.LatencyNs
	}
	if math.Abs(busySerial-st.BusyNs) > 1e-6*busySerial {
		t.Errorf("batch BusyNs %f != serial Exec sum %f", st.BusyNs, busySerial)
	}
	for i := range outsBatch {
		got, want := mustLoad(t, outsBatch[i]), mustLoad(t, outsSerial[i])
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("output %d lane %d: batch %d, serial %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestExecBatchOverlapTiming places independent instruction groups in
// disjoint banks (via AllocVectorAt) and checks they overlap in the
// timing model, then forces them into one bank and checks they
// serialize.
func TestExecBatchOverlapTiming(t *testing.T) {
	cfg := simdram.DefaultConfig()
	banks := cfg.DRAM.Banks
	if banks < 4 {
		t.Fatalf("default config has %d banks, want >= 4", banks)
	}
	n, w := cfg.DRAM.Cols, 8 // one segment per vector

	run := func(bankOf func(g int) int) simdram.BatchStats {
		sys, err := simdram.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		rng := rand.New(rand.NewSource(3))
		var prog isa.Program
		for g := 0; g < banks; g++ {
			bank := bankOf(g)
			sub := g % cfg.DRAM.SubarraysPerBank
			alloc := func() *simdram.Vector {
				v, err := sys.AllocVectorAt(n, w, bank, sub)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			a, b, dst := alloc(), alloc(), alloc()
			storeRandom(t, rng, a)
			storeRandom(t, rng, b)
			prog = append(prog, bbop(ops.OpAdd, dst, a, b))
		}
		st, err := sys.ExecBatch(prog)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	spread := run(func(g int) int { return g })
	if got := spread.Speedup(); got < float64(banks)-0.01 {
		t.Errorf("bank-disjoint batch speedup = %f, want ~%d (instructions must overlap)", got, banks)
	}
	packed := run(func(g int) int { return 0 })
	if math.Abs(packed.CriticalPathNs-packed.BusyNs) > 1e-9*packed.BusyNs {
		t.Errorf("single-bank batch must serialize: critical path %f, busy %f",
			packed.CriticalPathNs, packed.BusyNs)
	}
	if math.Abs(packed.BusyNs-spread.BusyNs) > 1e-9*packed.BusyNs {
		t.Errorf("serial-equivalent time must not depend on placement: %f vs %f",
			packed.BusyNs, spread.BusyNs)
	}
}

// TestExecBatchConcurrentStress issues many independent instructions
// across every bank — mainly valuable under `go test -race`, where it
// exercises concurrent dispatch through the worker pool.
func TestExecBatchConcurrentStress(t *testing.T) {
	cfg := simdram.DefaultConfig()
	sys, err := simdram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rng := rand.New(rand.NewSource(11))
	n, w := cfg.DRAM.Cols, 8
	type group struct {
		dst  *simdram.Vector
		want []uint64
	}
	var groups []group
	var prog isa.Program
	for bank := 0; bank < cfg.DRAM.Banks; bank++ {
		for sub := 0; sub < cfg.DRAM.SubarraysPerBank; sub++ {
			alloc := func() *simdram.Vector {
				v, err := sys.AllocVectorAt(n, w, bank, sub)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			a, b, dst := alloc(), alloc(), alloc()
			av := storeRandom(t, rng, a)
			bv := storeRandom(t, rng, b)
			want := make([]uint64, n)
			for i := range want {
				want[i] = (av[i] + bv[i]) & 0xFF
			}
			groups = append(groups, group{dst: dst, want: want})
			prog = append(prog, bbop(ops.OpAdd, dst, a, b))
		}
	}
	if _, err := sys.ExecBatch(prog); err != nil {
		t.Fatal(err)
	}
	for gi, g := range groups {
		got := mustLoad(t, g.dst)
		for i := range g.want {
			if got[i] != g.want[i] {
				t.Fatalf("group %d lane %d: got %d, want %d", gi, i, got[i], g.want[i])
			}
		}
	}
}

func TestExecBatchErrors(t *testing.T) {
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	a, _ := sys.AllocVector(64, 8)
	b, _ := sys.AllocVector(64, 8)
	dst, _ := sys.AllocVector(64, 8)
	if _, err := sys.ExecBatch(nil); err == nil {
		t.Error("empty program must be rejected")
	}
	bad := bbop(ops.OpAdd, dst, a, b)
	bad.Src[1] = 9999 // unknown handle
	_, err = sys.ExecBatch(isa.Program{bbop(ops.OpAdd, dst, a, b), bad})
	if err == nil || !strings.Contains(err.Error(), "instruction 1") {
		t.Errorf("error must name the failing instruction, got: %v", err)
	}
}

// TestExecBatchTrspInit checks trsp_init instructions validate their
// object and otherwise fall out of the batch.
func TestExecBatchTrspInit(t *testing.T) {
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	a, _ := sys.AllocVector(64, 8)
	trsp := isa.Instruction{Op: isa.OpTrspInit, Src: [3]uint16{a.Handle()}, Size: 64, Width: 8}
	st, err := sys.ExecBatch(isa.Program{trsp})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 0 || st.CriticalPathNs != 0 {
		t.Errorf("trsp_init-only batch must be free, got %+v", st)
	}
	trsp.Src[0] = 9999
	if _, err := sys.ExecBatch(isa.Program{trsp}); err == nil {
		t.Error("trsp_init of unknown object must fail")
	}
}
