package simdram

import (
	"strconv"
	"sync/atomic"

	"simdram/internal/cluster"
	"simdram/internal/ctrl"
	"simdram/internal/graph"
	"simdram/internal/isa"
	"simdram/internal/obs"
	"simdram/internal/ops"
)

// ClusterConfig configures a Cluster: how many independent channels it
// owns, the geometry of each, and the default placement policy new
// sharded vectors stripe with.
type ClusterConfig struct {
	// Channels is the number of independent channels. Each channel is a
	// full System — its own DRAM module, control unit, transposition
	// unit, and worker pool — so channels execute truly concurrently.
	Channels int
	// Channel configures every channel's System.
	Channel Config
	// Placement selects the default allocation policy.
	Placement PlacementPolicy
}

// PlacementPolicy selects how AllocShardedVector stripes elements
// across channels.
type PlacementPolicy int

const (
	// PlaceRoundRobin stripes every allocation across all channels in
	// fixed index order. Same-length vectors always share a plan, so
	// operand groups stay shard-aligned without further care — the
	// right default for compute-heavy programs.
	PlaceRoundRobin PlacementPolicy = iota
	// PlaceLeastLoaded orders channels by ascending allocated rows, so
	// lightly used channels absorb the larger chunks. Every allocation
	// changes the load it orders by, so even consecutive same-length
	// allocations can receive different plans; operand groups that must
	// meet in an operation should be allocated with AllocShardedGroup
	// (one load snapshot, one shared plan) or with explicit affinity.
	PlaceLeastLoaded
)

// DefaultClusterConfig returns a cluster of n default-geometry channels
// with round-robin placement.
func DefaultClusterConfig(n int) ClusterConfig {
	return ClusterConfig{Channels: n, Channel: DefaultConfig(), Placement: PlaceRoundRobin}
}

// Cluster aggregates N independent channels into one compute fabric
// with a single address space: ShardedVectors stripe their elements
// across channels, Store/Load scatter and gather through the per-channel
// transposition units concurrently, and ExecBatch fans a program out to
// every channel in parallel, merging the results under an honest timing
// model (per-channel critical paths combine as a max, work and energy
// as sums).
type Cluster struct {
	cfg      ClusterConfig
	channels []*System
	policy   cluster.Policy
	objects  map[uint16]*ShardedVector
	handles  handleSpace

	// plans memoizes compiled expression shapes (see PlanCacheStats);
	// profiles aggregates their measured per-op latencies and drives
	// profile-guided recompiles (see ProfileStats).
	plans    *graph.PlanCache
	profiles *graph.ProfileStore

	// metrics holds the cluster's dispatch observability: a batch
	// counter and, per channel, a modeled-latency histogram
	// (cluster.dispatch_ns{channel=N}) plus cumulative energy and
	// command counters (cluster.energy_pj{channel=N},
	// cluster.commands{channel=N}), so per-channel skew shows up in
	// energy terms as well as time. Exposed via Metrics().
	metrics  *obs.Registry
	batches  *obs.Counter
	dispatch []*obs.Histogram
	energy   []*obs.FloatCounter
	commands []*obs.Counter

	// verifyPlans gates the static IR verifier on cluster-compiled
	// programs; verified counts the cluster-wide programs that passed
	// (per-channel sub-programs are counted by each channel's System).
	verifyPlans bool
	verified    atomic.Int64
}

// NewCluster builds a cluster of cfg.Channels independent channels.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Channels < 1 {
		return nil, errorf("cluster needs at least 1 channel, have %d", cfg.Channels)
	}
	var policy cluster.Policy
	switch cfg.Placement {
	case PlaceRoundRobin:
		policy = cluster.RoundRobin{}
	case PlaceLeastLoaded:
		policy = cluster.LeastLoaded{}
	default:
		return nil, errorf("unknown placement policy %d", cfg.Placement)
	}
	c := &Cluster{
		cfg: cfg, policy: policy,
		objects:  make(map[uint16]*ShardedVector),
		plans:    graph.NewPlanCache(DefaultPlanCacheSize),
		profiles: graph.NewProfileStore(DefaultProfileThreshold, DefaultProfileMinJobs, defaultProfileShapes),
		metrics:  obs.NewRegistry(),
	}
	c.batches = c.metrics.Counter("cluster.batches")
	for ch := 0; ch < cfg.Channels; ch++ {
		label := strconv.Itoa(ch)
		c.dispatch = append(c.dispatch,
			c.metrics.Histogram(obs.TenantSeries("cluster.dispatch_ns", "channel", label)))
		c.energy = append(c.energy,
			c.metrics.FloatCounter(obs.TenantSeries("cluster.energy_pj", "channel", label)))
		c.commands = append(c.commands,
			c.metrics.Counter(obs.TenantSeries("cluster.commands", "channel", label)))
	}
	for i := 0; i < cfg.Channels; i++ {
		sys, err := New(cfg.Channel)
		if err != nil {
			c.Close()
			return nil, errorf("channel %d: %w", i, err)
		}
		c.channels = append(c.channels, sys)
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// Channels returns the number of channels.
func (c *Cluster) Channels() int { return len(c.channels) }

// Channel exposes one channel's System (for experiments and fault
// injection). Mutating a channel's allocations directly can starve the
// cluster's own vectors; use with care.
func (c *Cluster) Channel(i int) *System { return c.channels[i] }

// SetVerifyPlans gates the static IR verifier cluster-wide: the
// cluster compiler checks every lowered program against its handle
// table, and each channel's System additionally verifies the
// per-channel sub-programs it prepares (see System.SetVerifyPlans).
// Do not toggle while operations are executing.
func (c *Cluster) SetVerifyPlans(on bool) {
	c.verifyPlans = on
	for _, sys := range c.channels {
		sys.SetVerifyPlans(on)
	}
}

// VerifiedPlans returns how many programs the IR verifier has checked
// and passed across the cluster: cluster-wide compiled programs plus
// every channel's prepared sub-programs.
func (c *Cluster) VerifiedPlans() int64 {
	total := c.verified.Load()
	for _, sys := range c.channels {
		total += sys.VerifiedPlans()
	}
	return total
}

// Close releases every channel's worker pool.
func (c *Cluster) Close() {
	for _, sys := range c.channels {
		sys.Close()
	}
}

// loads returns the per-channel allocated-row counts policies shard
// against.
func (c *Cluster) loads() []int {
	loads := make([]int, len(c.channels))
	for i, sys := range c.channels {
		loads[i] = sys.usedRows()
	}
	return loads
}

// ShardedVector is a cluster-wide vector: n elements striped over the
// channels according to its placement plan, each channel's shard a
// normal Vector on that channel's System.
type ShardedVector struct {
	cl     *Cluster
	handle uint16
	n      int
	width  int
	plan   cluster.Plan
	parts  []*Vector // parallel to plan.Spans
	freed  bool
}

// AllocShardedVector reserves a vector of n elements of the given width,
// striped across channels by the cluster's placement policy.
func (c *Cluster) AllocShardedVector(n, width int) (*ShardedVector, error) {
	return c.allocSharded(n, width, c.policy, func(sys *System, count int) (*Vector, error) {
		return sys.AllocVector(count, width)
	})
}

// AllocShardedGroup reserves count vectors of n elements under one
// load snapshot, so all of them share a single placement plan and can
// meet in operations regardless of the placement policy. This is the
// way to allocate an operand group (sources plus destination) under
// PlaceLeastLoaded, whose per-allocation plans otherwise diverge as
// each allocation shifts the load it orders by.
func (c *Cluster) AllocShardedGroup(n, width, count int) ([]*ShardedVector, error) {
	if count < 1 {
		return nil, errorf("group needs at least 1 vector, have %d", count)
	}
	order := c.policy.Order(c.loads())
	group := make([]*ShardedVector, 0, count)
	for i := 0; i < count; i++ {
		v, err := c.allocSharded(n, width, cluster.Affinity{Channels: order}, func(sys *System, cnt int) (*Vector, error) {
			return sys.AllocVector(cnt, width)
		})
		if err != nil {
			for _, prev := range group {
				prev.Free()
			}
			return nil, err
		}
		group = append(group, v)
	}
	return group, nil
}

// AllocShardedVectorOn is AllocShardedVector with explicit channel
// affinity: elements stripe over exactly the listed channels, in order.
// Operand groups allocated with the same affinity and length share a
// plan regardless of the cluster's load.
func (c *Cluster) AllocShardedVectorOn(n, width int, channels []int) (*ShardedVector, error) {
	for _, ch := range channels {
		if ch < 0 || ch >= len(c.channels) {
			return nil, errorf("affinity channel %d out of range [0,%d)", ch, len(c.channels))
		}
	}
	return c.allocSharded(n, width, cluster.Affinity{Channels: channels}, func(sys *System, count int) (*Vector, error) {
		return sys.AllocVector(count, width)
	})
}

// AllocShardedVectorAt is AllocShardedVector with an explicit starting
// placement inside every channel: each shard's first segment lands in
// the given (bank, subarray) of its channel. Giving different origins to
// independent operand groups spreads them across banks on every channel,
// which is what lets ExecBatch overlap their instructions within each
// channel as well as across channels.
func (c *Cluster) AllocShardedVectorAt(n, width, bank, sub int) (*ShardedVector, error) {
	return c.allocSharded(n, width, c.policy, func(sys *System, count int) (*Vector, error) {
		return sys.AllocVectorAt(count, width, bank, sub)
	})
}

// allocSharded plans the stripe and allocates one shard per span,
// rolling everything back on failure.
func (c *Cluster) allocSharded(n, width int, policy cluster.Policy, alloc func(sys *System, count int) (*Vector, error)) (*ShardedVector, error) {
	plan, err := cluster.MakePlan(n, policy.Order(c.loads()))
	if err != nil {
		return nil, err
	}
	v := &ShardedVector{cl: c, n: n, width: width, plan: plan}
	for _, span := range plan.Spans {
		part, err := alloc(c.channels[span.Channel], span.Count)
		if err != nil {
			v.freeParts()
			return nil, errorf("channel %d: %w", span.Channel, err)
		}
		v.parts = append(v.parts, part)
	}
	h, err := c.handles.alloc()
	if err != nil {
		v.freeParts()
		return nil, err
	}
	v.handle = h
	c.objects[h] = v
	return v, nil
}

// Handle returns the cluster-wide object handle used in bbop programs
// passed to Cluster.ExecBatch.
func (v *ShardedVector) Handle() uint16 { return v.handle }

// Len returns the element count.
func (v *ShardedVector) Len() int { return v.n }

// Width returns the element width in bits.
func (v *ShardedVector) Width() int { return v.width }

// freeParts releases the per-channel shards.
func (v *ShardedVector) freeParts() {
	for _, part := range v.parts {
		part.Free()
	}
	v.parts = nil
}

// Free releases every channel's shard and the cluster handle.
func (v *ShardedVector) Free() {
	if v.freed {
		return
	}
	v.freeParts()
	delete(v.cl.objects, v.handle)
	v.cl.handles.release(v.handle)
	v.freed = true
}

// Store scatters horizontal data across the channels: each shard's
// chunk goes through its own channel's transposition unit, all channels
// in parallel.
func (v *ShardedVector) Store(data []uint64) error {
	if v.freed {
		return errorf("store to freed sharded vector")
	}
	if len(data) != v.n {
		return errorf("store: sharded vector holds %d elements, data has %d", v.n, len(data))
	}
	return cluster.Dispatch(v.spanChannels(), func(task, ch int, _ <-chan struct{}) error {
		span := v.plan.Spans[task]
		return v.parts[task].Store(data[span.Off : span.Off+span.Count])
	})
}

// Load gathers the vector back into one horizontal slice, all channels
// in parallel.
func (v *ShardedVector) Load() ([]uint64, error) {
	if v.freed {
		return nil, errorf("load from freed sharded vector")
	}
	out := make([]uint64, v.n)
	err := cluster.Dispatch(v.spanChannels(), func(task, ch int, _ <-chan struct{}) error {
		vals, err := v.parts[task].Load()
		if err != nil {
			return err
		}
		copy(out[v.plan.Spans[task].Off:], vals)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// spanChannels returns the channel of every span, parallel to parts.
func (v *ShardedVector) spanChannels() []int {
	chs := make([]int, len(v.plan.Spans))
	for i, span := range v.plan.Spans {
		chs[i] = span.Channel
	}
	return chs
}

// ClusterBatchStats describes the cost of a Cluster.ExecBatch call. It
// mirrors the internal cluster stats the way BatchStats mirrors
// ctrl.BatchStats; keep the fields in sync.
type ClusterBatchStats struct {
	Instructions int64
	Commands     int64
	// BusyNs is the aggregate fabric work: the summed serial-equivalent
	// time of every channel's own sub-batch. It is NOT the cost of one
	// System holding all the shards — a single channel overlaps a
	// multi-segment instruction across its banks, so that baseline can
	// only be measured by actually running the merged workload on one
	// System (cmd/simdram-bench -cluster does, and the
	// BenchmarkClusterExecBatch / BenchmarkClusterSingleSystem pair
	// reports both sides).
	BusyNs float64
	// CriticalPathNs is the cluster makespan: channels run concurrently,
	// so it is the maximum of the per-channel critical paths, not their
	// sum.
	CriticalPathNs float64
	// EnergyPJ is additive across channels: concurrency saves time, not
	// energy.
	EnergyPJ float64
	// ChannelUtilization[i] is channel i's critical path as a fraction
	// of the cluster makespan — 1.0 bounds the batch, 0 means idle.
	ChannelUtilization []float64
	// ChannelEnergyPJ[i] is channel i's share of EnergyPJ (entries sum
	// to it): the per-channel energy skew of the batch.
	ChannelEnergyPJ []float64
}

// Speedup returns the fabric-overlap factor: aggregate work divided by
// the cluster makespan, composing bank overlap inside each channel
// with channel overlap across the cluster. It is an upper bound on the
// gain over one System actually holding all the data (which also
// overlaps each instruction's segments across its banks); use the
// measured single-System baseline for that comparison.
//
// A zero critical path makes the ratio undefined; an all-zero batch
// reports 1 (no work, no gain) and a zero path with nonzero busy time
// reports 0, the same convention as BatchStats.Speedup.
func (s ClusterBatchStats) Speedup() float64 {
	if s.CriticalPathNs == 0 {
		if s.BusyNs == 0 {
			return 1
		}
		return 0
	}
	return s.BusyNs / s.CriticalPathNs
}

// UtilizationSkew returns the utilization spread (max−min) across
// channels: 0 is a perfectly balanced shard.
func (s ClusterBatchStats) UtilizationSkew() float64 {
	return cluster.Skew(s.ChannelUtilization)
}

// ExecBatch executes a program of bbop instructions — written against
// cluster-wide object handles — across every channel: the program is
// split by shard, handles and element counts are rewritten per channel,
// and the per-channel sub-batches dispatch in parallel through each
// channel's hazard-aware scheduler. Results are indistinguishable from
// executing the same program on one System holding all the data.
//
// Every operand of one instruction must be shard-aligned (same
// placement plan — allocate operand groups with the same length and
// policy, or with explicit affinity).
//
// If one channel fails, in-flight sibling work completes, siblings stop
// issuing further instructions, and all failures come back in one
// joined error annotated with the channel that raised them.
func (c *Cluster) ExecBatch(prog isa.Program) (ClusterBatchStats, error) {
	st, _, err := c.execBatchProfile(prog)
	return st, err
}

// execBatchProfile is ExecBatch surfacing per-instruction measured
// latencies for profile feedback: opNs[i] is the slowest channel's
// modeled busy time for prog[i] (the shard that bounds the
// instruction). opNs is nil when per-op timings cannot be attributed —
// a channel error, or a channel whose rewritten sub-program dropped
// instructions (zero-sized shards), which breaks index alignment.
func (c *Cluster) execBatchProfile(prog isa.Program) (ClusterBatchStats, []float64, error) {
	if err := prog.Validate(); err != nil {
		return ClusterBatchStats{}, nil, err
	}
	subProgs, ran, err := c.shardProgram(prog)
	if err != nil {
		return ClusterBatchStats{}, nil, err
	}
	return c.runSharded(len(prog), ran, func(ch int, cancel <-chan struct{}) (ctrl.BatchStats, []float64, error) {
		return c.channels[ch].execBatchProfile(subProgs[ch], cancel)
	})
}

// shardProgram splits a cluster-wide bbop program by shard: handles and
// element counts are rewritten per channel, and channels whose
// rewritten sub-program is empty (every referenced shard zero-sized
// there) are dropped. ran lists the channels with work, the indices
// valid into subProgs.
func (c *Cluster) shardProgram(prog isa.Program) (subProgs []isa.Program, ran []int, err error) {
	k := len(c.channels)
	handleMaps := make([]map[uint16]uint16, k)
	sizeMaps := make([]map[uint16]uint32, k)
	for ch := 0; ch < k; ch++ {
		handleMaps[ch] = map[uint16]uint16{}
		sizeMaps[ch] = map[uint16]uint32{}
	}
	mapped := map[uint16]bool{} // objects whose per-channel entries are filled
	for i, in := range prog {
		handles := append(in.Writes(), in.Reads()...)
		var first *ShardedVector
		for _, h := range handles {
			sv, ok := c.objects[h]
			if !ok {
				return nil, nil, errorf("instruction %d (%s): unknown cluster object %d", i, in, h)
			}
			if first == nil {
				first = sv
			} else if !sv.plan.Equal(first.plan) {
				return nil, nil, errorf(
					"instruction %d (%s): objects %d and %d are not shard-aligned (allocate operand groups with the same length and placement)",
					i, in, first.handle, h)
			}
			if mapped[h] {
				continue
			}
			mapped[h] = true
			for pi, span := range sv.plan.Spans {
				handleMaps[span.Channel][h] = sv.parts[pi].Handle()
				sizeMaps[span.Channel][h] = uint32(span.Count)
			}
			for ch := 0; ch < k; ch++ {
				if _, ok := sizeMaps[ch][h]; !ok {
					sizeMaps[ch][h] = 0
				}
			}
		}
	}
	subProgs = make([]isa.Program, k)
	for ch := 0; ch < k; ch++ {
		sub, err := prog.Rewrite(handleMaps[ch], sizeMaps[ch])
		if err != nil {
			return nil, nil, err
		}
		if len(sub) > 0 {
			subProgs[ch] = sub
			ran = append(ran, ch)
		}
	}
	return subProgs, ran, nil
}

// runSharded dispatches per-channel work in parallel and merges the
// results under the cluster's timing model — the execution half of
// execBatchProfile, shared with cached compiled programs (which skip
// the sharding). run executes channel ch's share, honoring cancel.
func (c *Cluster) runSharded(nInstr int, ran []int, run func(ch int, cancel <-chan struct{}) (ctrl.BatchStats, []float64, error)) (ClusterBatchStats, []float64, error) {
	k := len(c.channels)
	perCh := make([]ctrl.BatchStats, k)
	perChOp := make([][]float64, k)
	err := cluster.Dispatch(ran, func(task, ch int, cancel <-chan struct{}) error {
		st, opNs, err := run(ch, cancel)
		if err != nil {
			return err
		}
		perCh[ch] = st
		perChOp[ch] = opNs
		return nil
	})
	if err != nil {
		return ClusterBatchStats{}, nil, err
	}
	// Per-channel dispatch distributions: each participating channel's
	// modeled critical path for this batch.
	c.batches.Inc()
	for _, ch := range ran {
		c.dispatch[ch].Observe(int64(perCh[ch].CriticalPathNs))
		c.energy[ch].Add(perCh[ch].EnergyPJ)
		c.commands[ch].Add(uint64(perCh[ch].Commands))
	}
	m := cluster.Merge(perCh)
	// Per-op attribution: the instruction's latency is its slowest
	// shard. Only attributable when every participating channel ran the
	// full program (a dropped zero-sized shard would shift indices).
	opNs := make([]float64, nInstr)
	for _, ch := range ran {
		if len(perChOp[ch]) != nInstr {
			opNs = nil
			break
		}
		for i, d := range perChOp[ch] {
			if d > opNs[i] {
				opNs[i] = d
			}
		}
	}
	return ClusterBatchStats{
		Instructions:       m.Instructions,
		Commands:           m.Commands,
		BusyNs:             m.BusyNs,
		CriticalPathNs:     m.CriticalPathNs,
		EnergyPJ:           m.EnergyPJ,
		ChannelUtilization: m.ChannelUtilization,
		ChannelEnergyPJ:    m.ChannelEnergyPJ,
	}, opNs, nil
}

// Run executes the named operation across the cluster: dst[i] =
// op(srcs[0][i], …). It is the one-instruction convenience over
// ExecBatch; all vectors must be shard-aligned.
func (c *Cluster) Run(opName string, dst *ShardedVector, srcs ...*ShardedVector) (ClusterBatchStats, error) {
	d, err := ops.ByName(opName)
	if err != nil {
		return ClusterBatchStats{}, err
	}
	if len(srcs) == 0 || len(srcs) > 3 {
		return ClusterBatchStats{}, errorf("%s: ISA encodes 1-3 source objects, have %d", opName, len(srcs))
	}
	// Handles are recycled after Free and scoped per cluster, so a
	// stale or foreign vector's handle may name an unrelated object in
	// c.objects — reject both here, while we still hold the caller's
	// pointers.
	if dst.freed {
		return ClusterBatchStats{}, errorf("%s: destination freed", opName)
	}
	if dst.cl != c {
		return ClusterBatchStats{}, errorf("%s: destination belongs to a different cluster", opName)
	}
	for k, src := range srcs {
		if src.freed {
			return ClusterBatchStats{}, errorf("%s: source %d freed", opName, k)
		}
		if src.cl != c {
			return ClusterBatchStats{}, errorf("%s: source %d belongs to a different cluster", opName, k)
		}
	}
	in := isa.Instruction{
		Op:    isa.FromOp(d.Code),
		Dst:   dst.handle,
		Size:  uint32(dst.n),
		Width: uint8(srcs[0].width),
		N:     uint8(len(srcs)),
	}
	for i, src := range srcs {
		in.Src[i] = src.handle
	}
	return c.ExecBatch(isa.Program{in})
}
