package simdram

import (
	"context"
	"testing"
)

// profileTestConfig returns a geometry whose vectors span many
// segments per bank (Cols shrunk to 64), so an instruction's measured
// latency is an integer multiple of the static per-subarray cost model
// — the divergence the profile-feedback loop exists to correct.
func profileTestConfig() Config {
	cfg := DefaultConfig()
	cfg.DRAM.Cols = 64
	return cfg
}

// profileShape is the skewed request shape the feedback tests serve: a
// multiplication chain (expensive μPrograms) against a cheap side
// chain, plus a folding constant pair.
func profileShape(data []uint64) *Expr {
	a := Input(data, 8)
	b := Input(data, 8)
	hot := a.Mul(b).Abs()
	cold := a.Max(b).Min(a).Add(Scalar(3, 8).Add(Scalar(4, 8)))
	return hot.Apply("greater", cold.Mul(cold)).IfElse(a, b)
}

// TestProfileFeedbackRecompileSystem drives the full loop on one
// System: repeated materializations of one shape fold measured per-op
// latencies into its profile, divergence triggers exactly one
// profile-guided recompile, and the recompiled plan's results are
// bit-identical to the cold compile with a critical path no worse.
func TestProfileFeedbackRecompileSystem(t *testing.T) {
	sys, err := New(profileTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const n = 1024 // 16 segments over 4 banks: measured = 4× the static model
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i*37+11) & 0xFF
	}

	var coldOut []uint64
	var coldPathNs float64
	recompiles := 0
	for run := 0; run < DefaultProfileMinJobs+2; run++ {
		e := profileShape(data)
		cp, err := sys.Compile(e)
		if err != nil {
			t.Fatal(err)
		}
		st := cp.Stats()
		bst, err := cp.Execute()
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Result().Load()
		if err != nil {
			t.Fatal(err)
		}
		cp.Free()
		e.Result().Free()

		switch {
		case run == 0:
			if st.CacheHit || st.Recompiled {
				t.Fatalf("run 0 stats = %+v, want a plain cold compile", st)
			}
			coldOut = append([]uint64(nil), got...)
			coldPathNs = bst.CriticalPathNs
		default:
			for j := range got {
				if got[j] != coldOut[j] {
					t.Fatalf("run %d element %d: %d != cold compile's %d", run, j, got[j], coldOut[j])
				}
			}
		}
		if st.Recompiled {
			recompiles++
			if !st.ProfiledPlan {
				t.Fatalf("run %d: Recompiled without ProfiledPlan: %+v", run, st)
			}
			if st.ProfileJobs < DefaultProfileMinJobs {
				t.Fatalf("run %d: recompile with only %d profiled jobs", run, st.ProfileJobs)
			}
			if bst.CriticalPathNs > coldPathNs {
				t.Fatalf("recompiled schedule's critical path %.2f ns > cold compile's %.2f ns",
					bst.CriticalPathNs, coldPathNs)
			}
		}
	}
	if recompiles != 1 {
		t.Fatalf("%d profile-guided recompiles, want exactly 1", recompiles)
	}
	if ps := sys.ProfileStats(); ps.Recompiles != 1 || ps.Jobs == 0 {
		t.Fatalf("profile stats = %+v, want 1 recompile over recorded jobs", ps)
	}
	// Later compiles keep hitting the recompiled (profiled) plan.
	e := profileShape(data)
	cp, err := sys.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	if st := cp.Stats(); !st.CacheHit || !st.ProfiledPlan {
		t.Fatalf("post-recompile compile stats = %+v, want a hit on the profiled plan", st)
	}
	cp.Free()
	e.Result().Free()
}

// TestProfileFeedbackRecompileCluster is the same differential on a
// 4-channel cluster: the recompiled plan must produce bit-identical
// results to the cold compile across the sharded fabric.
func TestProfileFeedbackRecompileCluster(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Channels: 4, Channel: profileTestConfig(), Placement: PlaceRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 2048 // 512/channel → 8 segments over 4 banks per channel
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i*53+7) & 0xFF
	}

	var coldOut []uint64
	recompiled := false
	for run := 0; run < DefaultProfileMinJobs+2; run++ {
		e := profileShape(data)
		cp, err := cl.Compile(e)
		if err != nil {
			t.Fatal(err)
		}
		st := cp.Stats()
		if _, err := cp.Execute(); err != nil {
			t.Fatal(err)
		}
		got, err := e.ShardedResult().Load()
		if err != nil {
			t.Fatal(err)
		}
		cp.Free()
		e.ShardedResult().Free()

		if run == 0 {
			coldOut = append([]uint64(nil), got...)
		} else {
			for j := range got {
				if got[j] != coldOut[j] {
					t.Fatalf("run %d element %d: %d != cold compile's %d", run, j, got[j], coldOut[j])
				}
			}
		}
		recompiled = recompiled || st.Recompiled
	}
	if !recompiled {
		t.Fatal("cluster profile feedback never triggered a recompile")
	}
	if ps := cl.ProfileStats(); ps.Recompiles != 1 {
		t.Fatalf("cluster profile stats = %+v, want exactly 1 recompile", ps)
	}
}

// TestServerProfileFeedback drives the serving loop: repeated jobs of
// one shape through a Server must converge onto a profiled plan, keep
// results bit-identical, and surface the recompile and the modeled-
// time feedback in the server stats.
func TestServerProfileFeedback(t *testing.T) {
	cfg := DefaultServerConfig(1)
	cfg.Channel = profileTestConfig()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 1024
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i*91+5) & 0xFF
	}

	var coldOut []uint64
	var coldPathNs float64
	recompiles := 0
	const jobs = DefaultProfileMinJobs + 3
	for i := 0; i < jobs; i++ {
		fut, err := srv.SubmitLazy(context.Background(), "tenant-a", profileShape(data))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			coldOut = append([]uint64(nil), res.Values[0]...)
			coldPathNs = res.Batch.CriticalPathNs
		} else {
			for j, v := range res.Values[0] {
				if v != coldOut[j] {
					t.Fatalf("job %d element %d: %d != cold job's %d", i, j, v, coldOut[j])
				}
			}
		}
		if res.Compile.Recompiled {
			recompiles++
			if res.Batch.CriticalPathNs > coldPathNs {
				t.Fatalf("recompiled job's critical path %.2f ns > cold job's %.2f ns",
					res.Batch.CriticalPathNs, coldPathNs)
			}
		}
	}
	if recompiles != 1 {
		t.Fatalf("%d recompiled jobs, want exactly 1", recompiles)
	}
	st := srv.Stats()
	if st.Profile.Recompiles != 1 || st.Profile.Shapes != 1 || st.Profile.Jobs != jobs {
		t.Fatalf("server profile stats = %+v, want 1 recompile over %d jobs of 1 shape", st.Profile, jobs)
	}
	if st.Cache.Policy != "cost-lru" {
		t.Fatalf("cache policy = %q, want cost-lru", st.Cache.Policy)
	}
	ts := st.Tenants["tenant-a"]
	if ts.ModeledNs <= 0 {
		t.Fatalf("tenant modeled time = %v, want > 0 (executed stats fed back to the scheduler)", ts.ModeledNs)
	}
}
