// Package simdram is an end-to-end implementation of SIMDRAM (Hajinazar,
// Oliveira, et al., ASPLOS 2021): a framework for bit-serial SIMD
// processing using DRAM.
//
// A System bundles a simulated DRAM module, the memory-controller
// transposition unit, and the SIMDRAM control unit. Programs allocate
// Vectors (whose elements live vertically: all bits of an element in one
// DRAM column), store horizontal data into them (transparently
// transposed), and invoke operations that execute entirely inside DRAM
// subarrays via majority (triple-row activation) and row-copy commands:
//
//	sys, _ := simdram.New(simdram.DefaultConfig())
//	a, _ := sys.AllocVector(1_000_000, 32)
//	b, _ := sys.AllocVector(1_000_000, 32)
//	dst, _ := sys.AllocVector(1_000_000, 32)
//	a.Store(dataA)
//	b.Store(dataB)
//	stats, _ := sys.Run("addition", dst, a, b)
//	sum, _ := dst.Load()
//
// The three framework steps of the paper map onto the packages this
// facade wires together: Step 1 (MAJ/NOT synthesis) in internal/mig,
// Step 2 (μProgram generation) in internal/uprog, Step 3 (execution) in
// internal/ctrl on the internal/dram substrate.
package simdram

import (
	"fmt"
	"sync/atomic"

	"simdram/internal/ctrl"
	"simdram/internal/dram"
	"simdram/internal/graph"
	"simdram/internal/ops"
	"simdram/internal/vertical"
)

// DefaultPlanCacheSize bounds the compiled-plan caches a System,
// Cluster, or Server creates by default: enough for every distinct
// request shape of a realistic serving mix, small enough that the
// cached graphs stay negligible next to the simulated DRAM itself.
const DefaultPlanCacheSize = 128

// Profile-feedback defaults: a shape's plan is recompiled with
// observed per-op costs once at least DefaultProfileMinJobs executed
// jobs have been folded into its profile and some op's mean measured
// latency diverges from the static cost model by more than
// DefaultProfileThreshold (relative). The static model is
// per-subarray; long vectors whose segments serialize on a bank run
// integer multiples of it, so a generous threshold separates real
// divergence from noise-free equality.
const (
	DefaultProfileThreshold = 0.25
	DefaultProfileMinJobs   = 3
	// defaultProfileShapes bounds the shapes a profile store retains —
	// above the plan cache so profiles survive their plan's eviction.
	defaultProfileShapes = 4 * DefaultPlanCacheSize
)

// Config configures a System.
type Config struct {
	DRAM          dram.Config
	Transposition vertical.UnitConfig
	// Variant selects the execution flavor: VariantSIMDRAM (default) or
	// VariantAmbit for the in-DRAM baseline. Exposed for experiments.
	Variant ops.Variant
	// ReductionN is the operand count used when an N-ary operation is
	// invoked through the 2-operand Run API with extra sources.
	ReductionN int
}

// DefaultConfig returns a laptop-friendly geometry: 4 banks × 4 subarrays
// of 512 rows × 8192 columns (8 MiB of simulated DRAM, 32768 SIMD lanes).
func DefaultConfig() Config {
	d := dram.PaperConfig()
	d.Cols = 8192
	d.SubarraysPerBank = 4
	d.Banks = 4
	return Config{
		DRAM:          d,
		Transposition: vertical.DefaultUnitConfig(),
		Variant:       ops.VariantSIMDRAM,
	}
}

// PaperConfig returns the paper's full geometry (16 banks × 16 subarrays
// of 512 × 65536). Note this materializes 1 GiB of simulated DRAM; use it
// for fidelity experiments, not unit tests.
func PaperConfig() Config {
	return Config{
		DRAM:          dram.PaperConfig(),
		Transposition: vertical.DefaultUnitConfig(),
		Variant:       ops.VariantSIMDRAM,
	}
}

// System is a CPU + SIMDRAM-enabled memory subsystem.
type System struct {
	cfg Config
	mod *dram.Module
	cu  *ctrl.Unit
	tu  *vertical.Unit

	// rows[bank][sub] allocates the subarray's data rows.
	rows [][]*rowAlloc

	objects map[uint16]*Vector
	handles handleSpace

	// plans memoizes compiled expression shapes (see PlanCacheStats);
	// profiles aggregates their measured per-op latencies and drives
	// profile-guided recompiles (see ProfileStats).
	plans    *graph.PlanCache
	profiles *graph.ProfileStore

	// verifyPlans gates the static IR verifier (internal/verify) on
	// every lowered or batch-prepared program; verified counts the
	// programs that passed.
	verifyPlans bool
	verified    atomic.Int64
}

// handleSpace hands out 16-bit object handles, recycling freed ones so
// long-lived programs never exhaust the space while fewer than 65535
// objects are live. Handle 0 stays reserved as the invalid handle.
type handleSpace struct {
	next uint16
	free []uint16
}

// alloc returns a fresh or recycled handle, or an error once 65535
// objects are live at once. Fresh handles are preferred and freed ones
// recycled only after the fresh range runs out, so a stale handle in
// an old program keeps failing loudly ("unknown object") instead of
// silently resolving to whatever object was allocated next.
func (h *handleSpace) alloc() (uint16, error) {
	if h.next < ^uint16(0) {
		h.next++
		return h.next, nil
	}
	if n := len(h.free); n > 0 {
		id := h.free[n-1]
		h.free = h.free[:n-1]
		return id, nil
	}
	return 0, errorf("object handles exhausted (%d live objects)", h.next)
}

// release returns a handle for reuse.
func (h *handleSpace) release(id uint16) { h.free = append(h.free, id) }

// New builds a System.
func New(cfg Config) (*System, error) {
	if err := cfg.DRAM.Validate(); err != nil {
		return nil, err
	}
	mod, err := dram.NewModule(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:      cfg,
		mod:      mod,
		cu:       ctrl.New(mod, cfg.Variant),
		tu:       vertical.NewUnit(cfg.Transposition),
		objects:  make(map[uint16]*Vector),
		plans:    graph.NewPlanCache(DefaultPlanCacheSize),
		profiles: graph.NewProfileStore(DefaultProfileThreshold, DefaultProfileMinJobs, defaultProfileShapes),
	}
	s.rows = make([][]*rowAlloc, cfg.DRAM.Banks)
	for b := range s.rows {
		s.rows[b] = make([]*rowAlloc, cfg.DRAM.SubarraysPerBank)
		for sub := range s.rows[b] {
			s.rows[b][sub] = newRowAlloc(cfg.DRAM.DataRows())
		}
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Close releases the control unit's persistent worker pool. Long-lived
// programs that create many Systems should Close each one when done;
// execution after Close transparently restarts the pool.
func (s *System) Close() { s.cu.Close() }

// Module exposes the underlying DRAM module (for experiments and fault
// injection).
func (s *System) Module() *dram.Module { return s.mod }

// SetInterpretive switches μProgram execution between cached resolved
// command streams (the default bind-once/run-many hot path) and the
// per-run interpretive resolver. The two are bit- and trace-identical;
// the knob exists for differential testing and for measuring the
// host-side speedup. Do not toggle while operations are executing;
// programs prepared before the switch keep their mode.
func (s *System) SetInterpretive(on bool) { s.cu.SetInterpretive(on) }

// SetVerifyPlans gates the static IR verifier: when on, every program
// the graph compiler lowers and every batch ExecBatch prepares is
// checked (def-before-use, operand aliasing, width/arity/opcode
// consistency, binding bounds, and an independent recomputation of the
// RAW/WAW/WAR hazard edges cross-checked against the scheduler's
// dependence graph) before anything executes, and the control unit
// fails resolution errors eagerly at Prepare time. A verification
// failure rejects the whole program with typed *verify.Diagnostic
// errors. Like SetInterpretive, do not toggle while operations are
// executing.
func (s *System) SetVerifyPlans(on bool) {
	s.verifyPlans = on
	s.cu.SetVerifyPlans(on)
}

// VerifiedPlans returns how many programs the IR verifier has checked
// and passed since the system was built (0 unless SetVerifyPlans is
// on).
func (s *System) VerifiedPlans() int64 { return s.verified.Load() }

// TranspositionUnit exposes the transposition unit's statistics.
func (s *System) TranspositionUnit() *vertical.Unit { return s.tu }

// Lanes returns the total number of SIMD lanes (bitlines) that compute in
// parallel across all banks.
func (s *System) Lanes() int { return s.cfg.DRAM.Cols * s.cfg.DRAM.Banks }

// usedRows returns the total number of allocated data rows across every
// subarray — the load signal placement policies shard against.
func (s *System) usedRows() int {
	used := 0
	for _, bank := range s.rows {
		for _, a := range bank {
			used += a.inUse()
		}
	}
	return used
}

// segmentOrder maps segment index i to a (bank, subarray) pair,
// bank-major so consecutive segments land in different banks and execute
// in parallel.
func (s *System) segmentOrder(i int) (bank, sub int) {
	return i % s.cfg.DRAM.Banks, (i / s.cfg.DRAM.Banks) % s.cfg.DRAM.SubarraysPerBank
}

// Stats describes the cost of one operation or of the system so far.
type Stats struct {
	LatencyNs float64
	EnergyPJ  float64
	Commands  int64
}

// SystemStats returns cumulative control-unit and DRAM statistics.
func (s *System) SystemStats() Stats {
	cs := s.cu.Stats
	return Stats{LatencyNs: cs.BusyNs, EnergyPJ: s.mod.Stats().EnergyPJ, Commands: cs.Commands}
}

// Operations lists the names of all available operations.
func Operations() []string {
	cat := ops.Catalog()
	names := make([]string, len(cat))
	for i, d := range cat {
		names[i] = d.Name
	}
	return names
}

// errorf is fmt.Errorf with the package prefix.
func errorf(format string, args ...any) error {
	return fmt.Errorf("simdram: "+format, args...)
}
