package simdram

import (
	"math/rand"
	"testing"

	"simdram/internal/isa"
	"simdram/internal/ops"
)

func testSystem(t testing.TB) *System {
	t.Helper()
	cfg := DefaultConfig()
	// Shrink for unit tests: 2 banks × 2 subarrays of 128 × 256.
	cfg.DRAM.Cols = 256
	cfg.DRAM.RowsPerSubarray = 128
	cfg.DRAM.Banks = 2
	cfg.DRAM.SubarraysPerBank = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func randVals(rng *rand.Rand, n, width int) []uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & mask
	}
	return out
}

func TestStoreLoadRoundTrip(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(1))
	// Spans multiple segments: 600 elements > 256-column subarrays.
	v, err := sys.AllocVector(600, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := randVals(rng, 600, 16)
	if err := v.Store(data); err != nil {
		t.Fatal(err)
	}
	back, err := v.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("element %d: stored %d loaded %d", i, data[i], back[i])
		}
	}
	if sys.TranspositionUnit().Stats.LinesTransposed == 0 {
		t.Error("store/load must route through the transposition unit")
	}
}

func TestRunAdditionMultiSegment(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(2))
	n, w := 1000, 16
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, w)
	dst, err := sys.AllocVector(n, w)
	if err != nil {
		t.Fatal(err)
	}
	av := randVals(rng, n, w)
	bv := randVals(rng, n, w)
	if err := a.Store(av); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(bv); err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run("addition", dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.LatencyNs <= 0 || st.EnergyPJ <= 0 || st.Commands <= 0 {
		t.Errorf("stats not accounted: %+v", st)
	}
	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := (av[i] + bv[i]) & 0xFFFF
		if got[i] != want {
			t.Fatalf("element %d: %d + %d = %d, want %d", i, av[i], bv[i], got[i], want)
		}
	}
}

func TestEveryOperationThroughPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range Operations() {
		sys := testSystem(t)
		d, err := ops.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w := 8
		widths := d.SourceWidths(w, 3)
		n := 300
		srcs := make([]*Vector, len(widths))
		vals := make([][]uint64, len(widths))
		for k := range srcs {
			srcs[k], err = sys.AllocVector(n, widths[k])
			if err != nil {
				t.Fatal(err)
			}
			vals[k] = randVals(rng, n, widths[k])
			if err := srcs[k].Store(vals[k]); err != nil {
				t.Fatal(err)
			}
		}
		_, dw, err := Widths(name, w)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := sys.AllocVector(n, dw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(name, dst, srcs...); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := dst.Load()
		if err != nil {
			t.Fatal(err)
		}
		args := make([]uint64, len(widths))
		for i := 0; i < n; i++ {
			for k := range args {
				args[k] = vals[k][i]
			}
			want, err := Golden(name, w, args...)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("%s element %d args=%v: dram=%d golden=%d", name, i, args, got[i], want)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	sys := testSystem(t)
	a, _ := sys.AllocVector(100, 16)
	b, _ := sys.AllocVector(100, 16)
	c8, _ := sys.AllocVector(100, 8)
	dst, _ := sys.AllocVector(100, 16)

	if _, err := sys.Run("bogus", dst, a, b); err == nil {
		t.Error("unknown op must error")
	}
	if _, err := sys.Run("addition", dst, a); err == nil {
		t.Error("wrong arity must error")
	}
	if _, err := sys.Run("addition", dst, a, c8); err == nil {
		t.Error("mismatched source widths must error")
	}
	if _, err := sys.Run("addition", a, a, b); err == nil {
		t.Error("dst aliasing src must error")
	}
	small, _ := sys.AllocVector(50, 16)
	if _, err := sys.Run("addition", dst, a, small); err == nil {
		t.Error("mismatched lengths must error")
	}
	d1, _ := sys.AllocVector(100, 1)
	if _, err := sys.Run("addition", d1, a, b); err == nil {
		t.Error("wrong destination width must error")
	}
	if _, err := sys.Run("greater", d1, a, b); err != nil {
		t.Errorf("predicate into 1-bit vector should work: %v", err)
	}
	a.Free()
	if _, err := sys.Run("addition", dst, a, b); err == nil {
		t.Error("freed source must error")
	}
	if err := a.Store([]uint64{1}); err == nil {
		t.Error("store to freed vector must error")
	}
}

func TestAllocationExhaustion(t *testing.T) {
	sys := testSystem(t)
	// 112 data rows per subarray; 64-bit vectors of one segment burn 64
	// rows in subarray (0,0): the second must fail there.
	if _, err := sys.AllocVector(10, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AllocVector(10, 64); err == nil {
		t.Error("expected out-of-rows error")
	}
}

func TestExecBbopInstruction(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(4))
	n, w := 200, 8
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, w)
	dst, _ := sys.AllocVector(n, w)
	av := randVals(rng, n, w)
	bv := randVals(rng, n, w)
	a.Store(av)
	b.Store(bv)

	// bbop_trsp_init then bbop_addition, round-tripped through encoding.
	tr := isa.Instruction{Op: isa.OpTrspInit, Src: [3]uint16{a.Handle()}, Size: uint32(n), Width: uint8(w)}
	dec, err := isa.Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(dec); err != nil {
		t.Fatal(err)
	}
	add := isa.Instruction{
		Op:    isa.FromOp(ops.OpAdd),
		Dst:   dst.Handle(),
		Src:   [3]uint16{a.Handle(), b.Handle()},
		Size:  uint32(n),
		Width: uint8(w),
	}
	dec, err = isa.Decode(add.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(dec); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != (av[i]+bv[i])&0xFF {
			t.Fatalf("element %d wrong", i)
		}
	}
	// Unknown handle.
	bad := add
	bad.Dst = 999
	if _, err := sys.Exec(bad); err == nil {
		t.Error("unknown handle must error")
	}
}

func TestAmbitVariantSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAM.Cols = 256
	cfg.DRAM.RowsPerSubarray = 128
	cfg.DRAM.Banks = 1
	cfg.DRAM.SubarraysPerBank = 1
	cfg.Variant = ops.VariantAmbit
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	n, w := 100, 8
	a, _ := sys.AllocVector(n, w)
	b, _ := sys.AllocVector(n, w)
	dst, _ := sys.AllocVector(n, w)
	av := randVals(rng, n, w)
	bv := randVals(rng, n, w)
	a.Store(av)
	b.Store(bv)
	if _, err := sys.Run("addition", dst, a, b); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Load()
	for i := range got {
		if got[i] != (av[i]+bv[i])&0xFF {
			t.Fatalf("ambit element %d wrong", i)
		}
	}
}

func TestSystemStatsAccumulate(t *testing.T) {
	sys := testSystem(t)
	a, _ := sys.AllocVector(100, 8)
	b, _ := sys.AllocVector(100, 8)
	dst, _ := sys.AllocVector(100, 8)
	a.Store(make([]uint64, 100))
	b.Store(make([]uint64, 100))
	before := sys.SystemStats()
	if _, err := sys.Run("addition", dst, a, b); err != nil {
		t.Fatal(err)
	}
	after := sys.SystemStats()
	if after.Commands <= before.Commands || after.EnergyPJ <= before.EnergyPJ {
		t.Error("system stats must accumulate")
	}
}
