package simdram

// Facade-level differential tests for the bind-once/run-many hot path:
// resolved command streams must be bit- AND trace-identical to the
// interpretive μProgram path on a System, on a 4-channel Cluster, and
// through the compiled-graph cache.

import (
	"math/rand"
	"strings"
	"testing"

	"simdram/internal/dram"
	"simdram/internal/isa"
	"simdram/internal/ops"
)

// attachTracers hooks OnCommand on every subarray and returns one
// command log per subarray in (bank, sub) order.
func attachTracers(sys *System) []*[]dram.Command {
	cfg := sys.Config().DRAM
	var logs []*[]dram.Command
	for b := 0; b < cfg.Banks; b++ {
		for s := 0; s < cfg.SubarraysPerBank; s++ {
			tr := new([]dram.Command)
			sys.Module().Subarray(b, s).OnCommand = func(c dram.Command) { *tr = append(*tr, c) }
			logs = append(logs, tr)
		}
	}
	return logs
}

func detachTracers(sys *System) {
	cfg := sys.Config().DRAM
	for b := 0; b < cfg.Banks; b++ {
		for s := 0; s < cfg.SubarraysPerBank; s++ {
			sys.Module().Subarray(b, s).OnCommand = nil
		}
	}
}

func compareTraces(t *testing.T, label string, interp, resolved []*[]dram.Command) {
	t.Helper()
	total := 0
	for i := range interp {
		ti, tr := *interp[i], *resolved[i]
		if len(ti) != len(tr) {
			t.Fatalf("%s subarray %d: interpretive issued %d commands, resolved %d", label, i, len(ti), len(tr))
		}
		for j := range ti {
			if ti[j] != tr[j] {
				t.Fatalf("%s subarray %d command %d: interpretive %+v, resolved %+v", label, i, j, ti[j], tr[j])
			}
		}
		total += len(ti)
	}
	if total == 0 {
		t.Fatalf("%s: tracers captured nothing — differential is vacuous", label)
	}
}

// randomHazardProgram allocates a pool of vectors on sys and emits a
// randomized instruction DAG over them: RAW chains (temps read after
// being written), WAW/WAR reuse of destinations, and independent
// streams that the batch scheduler overlaps across banks. Allocation
// order is deterministic, so two identically-seeded systems place every
// vector on the same rows and must issue identical per-subarray command
// sequences.
func randomHazardProgram(t *testing.T, rng *rand.Rand, sys *System, n, w, nTemps, nInstr int) (isa.Program, []*Vector) {
	t.Helper()
	alloc := func() *Vector {
		v, err := sys.AllocVector(n, w)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := alloc(), alloc()
	storeRand(t, rng, a)
	storeRand(t, rng, b)
	pool := []*Vector{a, b}
	temps := make([]*Vector, nTemps)
	for i := range temps {
		temps[i] = alloc()
		pool = append(pool, temps[i])
	}
	codes := []ops.Code{ops.OpAdd, ops.OpSub, ops.OpMax, ops.OpMin}
	var prog isa.Program
	pick := func(not *Vector) *Vector {
		for {
			if v := pool[rng.Intn(len(pool))]; v != not {
				return v
			}
		}
	}
	for i := 0; i < nInstr; i++ {
		dst := temps[rng.Intn(len(temps))]
		s0 := pick(dst)
		s1 := pick(dst)
		prog = append(prog, isa.Instruction{
			Op:    isa.FromOp(codes[rng.Intn(len(codes))]),
			Dst:   dst.Handle(),
			Src:   [3]uint16{s0.Handle(), s1.Handle()},
			Size:  uint32(dst.Len()),
			Width: uint8(s0.Width()),
		})
	}
	return prog, temps
}

// TestResolvedDifferentialSystem is the satellite differential on a
// System: a randomized hazard-rich ExecBatch must be bit-identical and
// trace-identical between the interpretive and resolved-stream paths.
func TestResolvedDifferentialSystem(t *testing.T) {
	const seed, n, w = 23, 600, 16 // 600 > Cols: multi-segment vectors

	build := func(interp bool) (*System, isa.Program, []*Vector) {
		sys := testSystem(t)
		t.Cleanup(sys.Close)
		sys.SetInterpretive(interp)
		sys.SetVerifyPlans(true) // every batch in the differential must verify clean
		prog, outs := randomHazardProgram(t, rand.New(rand.NewSource(seed)), sys, n, w, 4, 16)
		return sys, prog, outs
	}
	sysI, progI, outsI := build(true)
	sysR, progR, outsR := build(false)

	logsI, logsR := attachTracers(sysI), attachTracers(sysR)
	stI, err := sysI.ExecBatch(progI)
	if err != nil {
		t.Fatal(err)
	}
	stR, err := sysR.ExecBatch(progR)
	if err != nil {
		t.Fatal(err)
	}
	detachTracers(sysI)
	detachTracers(sysR)

	if stI != stR {
		t.Errorf("batch stats diverge: interpretive %+v, resolved %+v", stI, stR)
	}
	compareTraces(t, "system", logsI, logsR)
	for i := range outsI {
		got, err := outsR[i].Load()
		if err != nil {
			t.Fatal(err)
		}
		want, err := outsI[i].Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("temp %d lane %d: resolved %d, interpretive %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestResolvedDifferentialCluster repeats the differential on a
// 4-channel cluster: every channel runs interpretively on one cluster
// and via resolved streams on the other.
func TestResolvedDifferentialCluster(t *testing.T) {
	const seed, channels, n, w = 31, 4, 2048, 8

	build := func(interp bool) (*Cluster, isa.Program, []*ShardedVector) {
		c := testCluster(t, channels)
		c.SetVerifyPlans(true) // every shard in the differential must verify clean
		for i := 0; i < c.Channels(); i++ {
			c.Channel(i).SetInterpretive(interp)
		}
		rng := rand.New(rand.NewSource(seed))
		alloc := func() *ShardedVector {
			sv, err := c.AllocShardedVector(n, w)
			if err != nil {
				t.Fatal(err)
			}
			return sv
		}
		a, b := alloc(), alloc()
		storeRand(t, rng, a)
		storeRand(t, rng, b)
		t1, t2, t3 := alloc(), alloc(), alloc()
		prog := isa.Program{
			clusterBbop(ops.OpAdd, t1, a, b),
			clusterBbop(ops.OpSub, t2, a, b),
			clusterBbop(ops.OpMax, t3, t1, t2),
			clusterBbop(ops.OpAdd, t1, t3, a), // WAW/WAR on t1
		}
		return c, prog, []*ShardedVector{t1, t2, t3}
	}
	cI, progI, outsI := build(true)
	cR, progR, outsR := build(false)

	var logsI, logsR []*[]dram.Command
	for i := 0; i < channels; i++ {
		logsI = append(logsI, attachTracers(cI.Channel(i))...)
		logsR = append(logsR, attachTracers(cR.Channel(i))...)
	}
	if _, err := cI.ExecBatch(progI); err != nil {
		t.Fatal(err)
	}
	if _, err := cR.ExecBatch(progR); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < channels; i++ {
		detachTracers(cI.Channel(i))
		detachTracers(cR.Channel(i))
	}
	compareTraces(t, "cluster", logsI, logsR)
	for i := range outsI {
		got, err := outsR[i].Load()
		if err != nil {
			t.Fatal(err)
		}
		want, err := outsI[i].Load()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("output %d lane %d: resolved %d, interpretive %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestResolvedDifferentialGraph runs a randomized 30+-node compiled DAG
// on two identically-seeded systems, one interpretive, and requires
// bit-identical roots. (Trace identity is pinned by the ExecBatch
// differentials above; the graph layer adds compiler-managed
// temporaries on top of the same execution path.)
func TestResolvedDifferentialGraph(t *testing.T) {
	const seed, n, width = 41, 300, 16

	run := func(interp bool) [][]uint64 {
		sys := testGraphSystem(t)
		t.Cleanup(sys.Close)
		sys.SetInterpretive(interp)
		sys.SetVerifyPlans(true) // compiled plans must verify clean in both modes
		rng := rand.New(rand.NewSource(seed))
		leaves := make([]*Expr, 4)
		for i := range leaves {
			v, err := sys.AllocVector(n, width)
			if err != nil {
				t.Fatal(err)
			}
			storeRand(t, rng, v)
			leaves[i] = sys.Lazy(v)
		}
		roots := buildRandomDAG(rng, leaves, width, 34)
		if _, err := sys.Materialize(roots...); err != nil {
			t.Fatal(err)
		}
		out := make([][]uint64, len(roots))
		for i, r := range roots {
			vals, err := r.Result().Load()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = vals
		}
		return out
	}
	want := run(true)
	got := run(false)
	if len(got) != len(want) {
		t.Fatalf("root count diverged: resolved %d, interpretive %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("root %d element %d: resolved %d, interpretive %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestCompiledExecuteReuse pins the bind-once/run-many contract at the
// compiled-graph level: repeated Execute calls reuse the prepared
// program and stay bit-identical, and staleness (a freed input) is
// detected rather than silently reading recycled rows.
func TestCompiledExecuteReuse(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	rng := rand.New(rand.NewSource(53))
	va, err := sys.AllocVector(300, 16)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := sys.AllocVector(300, 16)
	if err != nil {
		t.Fatal(err)
	}
	da := storeRand(t, rng, va)
	db := storeRand(t, rng, vb)
	e := sys.Lazy(va).Add(sys.Lazy(vb)).Max(sys.Lazy(va))
	cp, err := sys.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Execute(); err != nil {
		t.Fatal(err)
	}
	first, err := e.Result().Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		sum := (da[i] + db[i]) & 0xFFFF
		want := sum
		if da[i] > want {
			want = da[i]
		}
		if first[i] != want {
			t.Fatalf("element %d: got %d, want max(%d+%d, %d) = %d", i, first[i], da[i], db[i], da[i], want)
		}
	}
	if _, err := cp.Execute(); err != nil {
		t.Fatalf("second Execute on cached plan: %v", err)
	}
	second, err := e.Result().Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("element %d changed across Execute calls: %d then %d", i, first[i], second[i])
		}
	}
	va.Free()
	if _, err := cp.Execute(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("Execute after freeing an input must report a stale prepared program, got %v", err)
	}
}

// BenchmarkResolvedCompiledExecute measures steady-state run-many
// execution of a compiled plan (prepared batch + resolved streams).
func BenchmarkResolvedCompiledExecute(b *testing.B) {
	sys := testGraphSystem(b)
	defer sys.Close()
	rng := rand.New(rand.NewSource(67))
	va, err := sys.AllocVector(300, 16)
	if err != nil {
		b.Fatal(err)
	}
	vb, err := sys.AllocVector(300, 16)
	if err != nil {
		b.Fatal(err)
	}
	storeRand(b, rng, va)
	storeRand(b, rng, vb)
	e := sys.Lazy(va).Add(sys.Lazy(vb)).Max(sys.Lazy(va))
	cp, err := sys.Compile(e)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cp.Execute(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}
