package simdram

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"simdram/internal/isa"
	"simdram/internal/verify"
)

// chainExpr builds a deep dependence chain whose intermediates each
// die immediately after their single use — the shape that makes the
// liveness-driven slot pool reuse temporary rows, and with them the
// WAR/WAW hazards the scheduler's dependence graph must order.
func chainExpr(t *testing.T, sys *System, rng *rand.Rand, n, width, depth int) *Expr {
	t.Helper()
	alloc := func() *Expr {
		v, err := sys.AllocVector(n, width)
		if err != nil {
			t.Fatal(err)
		}
		storeRand(t, rng, v)
		return sys.Lazy(v)
	}
	a, b := alloc(), alloc()
	e := a.Apply("addition", b)
	for i := 0; i < depth; i++ {
		if i%2 == 0 {
			e = e.Apply("subtraction", a)
		} else {
			e = e.Apply("addition", b)
		}
	}
	return e
}

// TestVerifyRealCompiledProgram takes a genuinely compiled plan —
// lowered through constant folding, CSE, slot pooling, and the list
// scheduler — and checks that (a) the real program verifies clean
// against the object tracker's bindings and the scheduler's own
// dependence graph, and (b) seeded corruptions of that same real
// program are each rejected with a typed, located diagnostic.
func TestVerifyRealCompiledProgram(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	sys.SetVerifyPlans(true)
	rng := rand.New(rand.NewSource(7))

	cp, err := sys.Compile(chainExpr(t, sys, rng, 64, 8, 12))
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Free()
	prog := cp.lw.prog
	if len(prog) < 3 {
		t.Fatalf("compiled chain too short to corrupt: %d instructions", len(prog))
	}

	// The pristine program must verify clean with the exact dependence
	// graph the batched engine executes with.
	deps := prog.Deps()
	if err := verify.Program(prog, sys.verifyOptions(prog, deps, cp.lw.defined)); err != nil {
		t.Fatalf("real compiled program rejected: %v", err)
	}

	corrupt := []struct {
		name     string
		mutate   func(p isa.Program, deps [][]int)
		check    verify.Check
		contains string
	}{
		{
			name:     "dependence edges dropped on last instruction",
			mutate:   func(p isa.Program, deps [][]int) { deps[len(deps)-1] = nil },
			check:    verify.CheckHazard,
			contains: "-after-",
		},
		{
			name:   "source retargeted to a dead handle",
			mutate: func(p isa.Program, deps [][]int) { p[len(p)-1].Src[0] = 0xFFF0 },
			check:  verify.CheckObject,
		},
		{
			name:   "zero-size instruction",
			mutate: func(p isa.Program, deps [][]int) { p[1].Size = 0 },
			check:  verify.CheckEncoding,
		},
		{
			name: "destination aliased onto its own source",
			mutate: func(p isa.Program, deps [][]int) {
				last := &p[len(p)-1]
				last.Dst = last.Src[0]
			},
			check:    verify.CheckAlias,
			contains: "same object",
		},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			p := cp.Program() // fresh copy per corruption
			d := append([][]int(nil), p.Deps()...)
			tc.mutate(p, d)
			err := verify.Program(p, sys.verifyOptions(p, d, cp.lw.defined))
			var diag *verify.Diagnostic
			if !errors.As(err, &diag) {
				t.Fatalf("corruption %q not rejected with a *verify.Diagnostic: %v", tc.name, err)
			}
			for _, got := range verify.Diagnostics(err) {
				if got.Check == tc.check && (tc.contains == "" || strings.Contains(got.Error(), tc.contains)) {
					return
				}
			}
			t.Fatalf("no %s diagnostic (contains %q) in: %v", tc.check, tc.contains, err)
		})
	}
}

// TestSlotReuseHazardRegression pins the latent-hazard invariant of
// liveness-driven slot pooling: reusing a temporary row slot for a new
// value creates WAR/WAW hazards that exist ONLY because of the reuse,
// and the scheduler's dependence graph must carry edges ordering them.
// The test compiles a chain whose slot pool provably reuses rows,
// finds a reused slot's second write, deletes its dependence edges,
// and requires the verifier to catch the now-unordered hazard.
func TestSlotReuseHazardRegression(t *testing.T) {
	sys := testGraphSystem(t)
	defer sys.Close()
	rng := rand.New(rand.NewSource(9))

	cp, err := sys.Compile(chainExpr(t, sys, rng, 64, 8, 12))
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Free()
	if st := cp.Stats(); st.TempRowsPooled >= st.TempRowsNaive {
		t.Fatalf("chain did not trigger slot reuse: pooled %d rows, naive %d",
			st.TempRowsPooled, st.TempRowsNaive)
	}

	prog := cp.Program()
	// A reused slot shows up as one destination handle written by two
	// different instructions.
	writer := map[uint16]int{}
	second := -1
	var slot uint16
	for i, in := range prog {
		ws := in.Writes()
		if len(ws) == 0 {
			continue
		}
		h := ws[0]
		if _, again := writer[h]; again {
			second, slot = i, h
			break
		}
		writer[h] = i
	}
	if second < 0 {
		t.Fatal("no temporary slot written twice despite pooled rows < naive rows")
	}

	deps := prog.Deps()
	if len(deps[second]) == 0 {
		t.Fatalf("scheduler emitted no dependence edges for the reusing write at %d", second)
	}
	deps[second] = nil // simulate a scheduler that forgot the reuse hazards
	err = verify.Program(prog, sys.verifyOptions(prog, deps, cp.lw.defined))
	var diag *verify.Diagnostic
	if !errors.As(err, &diag) {
		t.Fatalf("unordered slot-reuse hazard on handle %d not rejected: %v", slot, err)
	}
	found := false
	for _, d := range verify.Diagnostics(err) {
		if d.Check == verify.CheckHazard && d.Instr == second {
			found = true
			if !strings.Contains(d.Error(), "write-after") && !strings.Contains(d.Error(), "read-after-write") {
				t.Fatalf("hazard diagnostic does not name the hazard kind: %v", d)
			}
		}
	}
	if !found {
		t.Fatalf("no hazard diagnostic at the reusing write %d: %v", second, err)
	}
}
