package simdram

import (
	"simdram/internal/cluster"
	"simdram/internal/ctrl"
	"simdram/internal/graph"
	"simdram/internal/isa"
)

// Lazy wraps a sharded vector as a lazy expression leaf. The vector
// must belong to this Cluster and stay live until the expression is
// materialized; every leaf of one expression must be shard-aligned
// (same placement plan).
func (c *Cluster) Lazy(v *ShardedVector) *Expr { return &Expr{kind: exprShardLeaf, sleaf: v} }

// ClusterCompiled is Compiled for a Cluster: the same lowered bbop
// program, but over cluster-wide handles, with sharded temporaries and
// results — Execute fans the batch out across every channel.
type ClusterCompiled struct {
	cl    *Cluster
	lw    *lowered
	stats CompileStats
	fb    *planFeedback
	freed bool
	// pp[ch] is channel ch's prepared (bind-once) sub-program, built on
	// first Execute alongside ran (the channels with work): later runs
	// skip sharding, resolution, validation, and scheduling on every
	// channel.
	pp  []*preparedProgram
	ran []int
}

// Compile lowers the expressions for cluster execution with every
// optimization pass enabled.
func (c *Cluster) Compile(exprs ...*Expr) (*ClusterCompiled, error) {
	return c.CompileWith(CompileOptions{}, exprs...)
}

// CompileWith is Compile with selected passes disabled — primarily for
// differential testing and baseline measurement.
func (c *Cluster) CompileWith(opts CompileOptions, exprs ...*Expr) (*ClusterCompiled, error) {
	env, plan, stats, err := planExprs(nil, c, opts, exprs, c.plans, c.profiles, nil, 0)
	if err != nil {
		return nil, err
	}
	// Compiler-allocated vectors must share the leaves' placement plan,
	// or per-instruction shard alignment fails at execution. Striping
	// over the first leaf's span order with the same element count
	// reproduces its plan exactly; the allocator double-checks. An
	// expression of only Input data leaves has no sharded leaf to
	// follow, so the cluster's own policy plans the whole group from
	// one load snapshot.
	var firstPlan cluster.Plan
	if env.firstShard != nil {
		firstPlan = env.firstShard.sleaf.plan
	} else {
		firstPlan, err = cluster.MakePlan(env.n, c.policy.Order(c.loads()))
		if err != nil {
			return nil, err
		}
	}
	order := make([]int, len(firstPlan.Spans))
	for i, span := range firstPlan.Spans {
		order[i] = span.Channel
	}
	lw, err := lowerPlan(env, plan, exprs,
		func(width int) (graphObj, error) {
			v, err := c.allocSharded(env.n, width, cluster.Affinity{Channels: order}, func(sys *System, count int) (*Vector, error) {
				return sys.AllocVector(count, width)
			})
			if err != nil {
				return nil, err
			}
			if !v.plan.Equal(firstPlan) {
				v.Free()
				return nil, errorf("graph: cannot reproduce the leaf placement plan for a temporary")
			}
			return v, nil
		},
		func(id graph.NodeID) graphObj { return env.leafOf[id].sleaf },
		leafDataOf(env),
	)
	if err != nil {
		return nil, err
	}
	if err := c.verifyLowered(lw); err != nil {
		lw.freeTemps()
		lw.discardResults()
		return nil, err
	}
	lw.publish()
	return &ClusterCompiled{cl: c, lw: lw, stats: stats, fb: feedbackFor(c.profiles, env, plan, opts, c.cfg.Channel)}, nil
}

// PlanCacheStats reports the hit/miss counters of the Cluster's
// compiled-plan cache, which Compile/CompileWith/Materialize consult.
func (c *Cluster) PlanCacheStats() PlanCacheStats { return cacheStats(c.plans) }

// ProfileStats reports the Cluster's shape-profile counters: executed
// Materialize/Execute batches fold their measured per-op latencies
// into per-shape profiles, and divergent shapes are recompiled with
// observed costs on their next Compile.
func (c *Cluster) ProfileStats() ProfileStats { return profileStats(c.profiles) }

// Materialize compiles and executes the expressions as one batch fanned
// across every channel, releasing every temporary afterwards. Each
// expression's value is then available through ShardedResult; result
// vectors are owned by the caller. On error no results are retained.
func (c *Cluster) Materialize(exprs ...*Expr) (ClusterBatchStats, error) {
	cp, err := c.Compile(exprs...)
	if err != nil {
		return ClusterBatchStats{}, err
	}
	st, err := cp.Execute()
	cp.Free()
	if err != nil {
		cp.discardResults()
		return ClusterBatchStats{}, err
	}
	return st, nil
}

// Stats reports what the compiler did with the graph.
func (cp *ClusterCompiled) Stats() CompileStats { return cp.stats }

// Program returns a copy of the lowered bbop program over cluster-wide
// handles.
func (cp *ClusterCompiled) Program() isa.Program {
	return append(isa.Program(nil), cp.lw.prog...)
}

// Execute runs the compiled batch across the cluster. Results become
// valid once it returns; calling it again recomputes them in place.
// The first run shards the program and binds each channel's share once
// (resolution, validation, scheduling, resolved command streams);
// repeated runs reuse those prepared forms and pay only the execution
// loops. Each successful run folds its measured per-op latencies (the
// slowest shard of each instruction) into the Cluster's shape profile,
// feeding the profile-guided recompile loop.
func (cp *ClusterCompiled) Execute() (ClusterBatchStats, error) {
	if cp.freed {
		return ClusterBatchStats{}, errorf("graph: compiled program already freed")
	}
	if len(cp.lw.prog) == 0 {
		return ClusterBatchStats{}, nil
	}
	if cp.pp == nil {
		if err := cp.lw.prog.Validate(); err != nil {
			return ClusterBatchStats{}, err
		}
		subProgs, ran, err := cp.cl.shardProgram(cp.lw.prog)
		if err != nil {
			return ClusterBatchStats{}, err
		}
		pp := make([]*preparedProgram, len(cp.cl.channels))
		for _, ch := range ran {
			if pp[ch], err = cp.cl.channels[ch].prepareProgram(subProgs[ch]); err != nil {
				return ClusterBatchStats{}, err
			}
		}
		cp.pp, cp.ran = pp, ran
	}
	st, opNs, err := cp.cl.runSharded(len(cp.lw.prog), cp.ran, func(ch int, cancel <-chan struct{}) (ctrl.BatchStats, []float64, error) {
		return cp.cl.channels[ch].runPrepared(cp.pp[ch], cancel)
	})
	if err != nil {
		return ClusterBatchStats{}, err
	}
	cp.fb.record(opNs)
	return st, nil
}

// Free releases the compiler-allocated temporaries and constant splats.
// Result vectors are untouched — they belong to the caller.
func (cp *ClusterCompiled) Free() {
	if cp.freed {
		return
	}
	cp.freed = true
	cp.lw.freeTemps()
}

// discardResults releases compiler-owned result vectors and clears the
// expressions' result pointers — the cleanup path when execution fails.
func (cp *ClusterCompiled) discardResults() { cp.lw.discardResults() }
