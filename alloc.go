package simdram

// rowAlloc manages the data rows of one subarray with a first-fit free
// list, so kernels can allocate and free temporaries without exhausting
// the subarray. The scratch region used during μProgram execution is
// carved from the free tail at run time.
type rowAlloc struct {
	limit int
	free  [][2]int // sorted, disjoint [start, size) intervals
}

func newRowAlloc(limit int) *rowAlloc {
	return &rowAlloc{limit: limit, free: [][2]int{{0, limit}}}
}

// alloc reserves n contiguous rows, first fit from the bottom.
func (a *rowAlloc) alloc(n int) (int, bool) {
	for i, iv := range a.free {
		if iv[1] >= n {
			start := iv[0]
			if iv[1] == n {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = [2]int{iv[0] + n, iv[1] - n}
			}
			return start, true
		}
	}
	return 0, false
}

// release returns [start, start+n) to the free list, merging neighbors.
func (a *rowAlloc) release(start, n int) {
	if n <= 0 {
		return
	}
	idx := len(a.free)
	for i, iv := range a.free {
		if iv[0] > start {
			idx = i
			break
		}
	}
	a.free = append(a.free, [2]int{})
	copy(a.free[idx+1:], a.free[idx:])
	a.free[idx] = [2]int{start, n}
	// Merge around idx.
	merged := a.free[:0]
	for _, iv := range a.free {
		if m := len(merged); m > 0 && merged[m-1][0]+merged[m-1][1] >= iv[0] {
			end := iv[0] + iv[1]
			if prevEnd := merged[m-1][0] + merged[m-1][1]; prevEnd > end {
				end = prevEnd
			}
			merged[m-1][1] = end - merged[m-1][0]
		} else {
			merged = append(merged, iv)
		}
	}
	a.free = merged
}

// tailFree returns how many rows at the very top of the region are free —
// the space available for a μProgram's scratch rows.
func (a *rowAlloc) tailFree() int {
	if len(a.free) == 0 {
		return 0
	}
	last := a.free[len(a.free)-1]
	if last[0]+last[1] == a.limit {
		return last[1]
	}
	return 0
}

// inUse returns the number of allocated rows.
func (a *rowAlloc) inUse() int {
	used := a.limit
	for _, iv := range a.free {
		used -= iv[1]
	}
	return used
}
