package simdram

import (
	"simdram/internal/isa"
	"simdram/internal/verify"
)

// verifyOptions snapshots what the object tracker knows about every
// handle a program references into the IR verifier's input: element
// width, row extents per (bank, subarray) segment, and — when the
// graph compiler supplies its definedness map — whether the object
// holds data before the program runs. Handles that name no live
// object are left out of the map so the verifier reports them as
// CheckObject diagnostics. deps is the dependence graph the scheduler
// will execute with; passing it (rather than nil) makes the verifier
// cross-check the exact edges the batched engine uses.
func (s *System) verifyOptions(prog isa.Program, deps [][]int, defined map[uint16]bool) verify.Options {
	objects := make(map[uint16]verify.Object)
	add := func(h uint16) {
		if _, seen := objects[h]; seen {
			return
		}
		v, ok := s.objects[h]
		if !ok || v.freed {
			return
		}
		def := true
		if defined != nil {
			def = defined[h]
		}
		obj := verify.Object{Width: v.width, Defined: def}
		for _, seg := range v.segs {
			obj.Extents = append(obj.Extents, verify.Extent{
				Bank: seg.bank, Sub: seg.sub, Row: seg.baseRow, Rows: v.width,
			})
		}
		objects[h] = obj
	}
	forEachHandle(prog, add)
	return verify.Options{
		Objects:  objects,
		DataRows: s.cfg.DRAM.DataRows(),
		Deps:     deps,
	}
}

// maybeVerify runs the IR verifier over a program about to be
// prepared for execution, when SetVerifyPlans is on. defined is the
// graph compiler's definedness map (nil for directly submitted
// programs, whose operands are caller-stored vectors).
func (s *System) maybeVerify(prog isa.Program, deps [][]int, defined map[uint16]bool) error {
	if !s.verifyPlans || len(prog) == 0 {
		return nil
	}
	if err := verify.Program(prog, s.verifyOptions(prog, deps, defined)); err != nil {
		return err
	}
	s.verified.Add(1)
	return nil
}

// verifyLowered verifies a freshly lowered graph program against the
// compiler's own definedness tracking (temp slots and op roots start
// undefined; inputs and constants are defined). The dependence graph
// is recomputed by the verifier so the hazard cross-check covers the
// exact edges prepareProgram will hand the scheduler.
func (s *System) verifyLowered(lw *lowered) error {
	if !s.verifyPlans || len(lw.prog) == 0 {
		return nil
	}
	if err := verify.Program(lw.prog, s.verifyOptions(lw.prog, nil, lw.defined)); err != nil {
		return err
	}
	s.verified.Add(1)
	return nil
}

// verifyLowered verifies a cluster-compiled program over cluster-wide
// handles. Sharded vectors have no single physical placement, so the
// alias and bounds checks run later, per channel, on the rewritten
// sub-programs; here the verifier covers encoding, opcode/arity/width
// against the handle table, def-before-use, and the hazard
// cross-check.
func (c *Cluster) verifyLowered(lw *lowered) error {
	if !c.verifyPlans || len(lw.prog) == 0 {
		return nil
	}
	objects := make(map[uint16]verify.Object)
	forEachHandle(lw.prog, func(h uint16) {
		if _, seen := objects[h]; seen {
			return
		}
		v, ok := c.objects[h]
		if !ok || v.freed {
			return
		}
		def := true
		if lw.defined != nil {
			def = lw.defined[h]
		}
		objects[h] = verify.Object{Width: v.width, Defined: def}
	})
	if err := verify.Program(lw.prog, verify.Options{Objects: objects}); err != nil {
		return err
	}
	c.verified.Add(1)
	return nil
}

// forEachHandle calls fn with every object handle a program
// references: the announced object for bbop_trsp_init, the
// destination and all three source slots for operations (unused
// slots hold handle 0, which never names a live object).
func forEachHandle(prog isa.Program, fn func(uint16)) {
	for _, in := range prog {
		if in.Op == isa.OpTrspInit {
			fn(in.Src[0])
			continue
		}
		fn(in.Dst)
		for _, h := range in.Src {
			fn(h)
		}
	}
}
