package simdram_test

// Benchmark harness: one benchmark per paper table/figure (E1-E8, see
// DESIGN.md §5 and EXPERIMENTS.md), plus micro-benchmarks of the
// framework itself. The E* benchmarks regenerate the experiment and
// report its headline number as a custom metric; run
//
//	go test -bench=. -benchmem
//
// and see cmd/simdram-bench for the full printed tables.

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"simdram"
	"simdram/internal/baseline/cpu"
	"simdram/internal/batchgen"
	"simdram/internal/dram"
	"simdram/internal/experiments"
	"simdram/internal/isa"
	"simdram/internal/kernels"
	"simdram/internal/mig"
	"simdram/internal/ops"
	"simdram/internal/reliability"
	"simdram/internal/workload"
)

func ratioCell(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "×"), 64)
	if err != nil {
		b.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return v
}

// BenchmarkE1CommandCounts regenerates the μProgram cost table and
// reports the maximum SIMDRAM-vs-Ambit speedup (paper: up to 5.1×).
func BenchmarkE1CommandCounts(b *testing.B) {
	var maxRatio float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E1CommandCounts([]int{8, 16, 32})
		if err != nil {
			b.Fatal(err)
		}
		maxRatio = 0
		for _, row := range tab.Rows {
			if r := ratioCell(b, row[len(row)-1]); r > maxRatio {
				maxRatio = r
			}
		}
	}
	b.ReportMetric(maxRatio, "max-speedup-vs-ambit")
}

// BenchmarkE2Throughput regenerates the 16-operation throughput figure
// and reports the geomean advantage over the CPU at 16 banks.
func BenchmarkE2Throughput(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E2Throughput(32)
		if err != nil {
			b.Fatal(err)
		}
		geo = 1
		for _, row := range tab.Rows {
			geo *= ratioCell(b, row[7])
		}
		geo = math.Pow(geo, 1.0/float64(len(tab.Rows)))
	}
	b.ReportMetric(geo, "geomean-vs-cpu")
}

// BenchmarkE3Energy regenerates the energy-efficiency figure and reports
// the geomean advantage over the CPU (paper: 257×).
func BenchmarkE3Energy(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E3Energy(32)
		if err != nil {
			b.Fatal(err)
		}
		geo = 1
		for _, row := range tab.Rows {
			geo *= ratioCell(b, row[5])
		}
		geo = math.Pow(geo, 1.0/float64(len(tab.Rows)))
	}
	b.ReportMetric(geo, "geomean-energy-vs-cpu")
}

// BenchmarkE4Kernels regenerates the seven-kernel comparison and reports
// the maximum speedup over Ambit (paper: up to 2.5×).
func BenchmarkE4Kernels(b *testing.B) {
	var maxVsAmbit float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E4Kernels()
		if err != nil {
			b.Fatal(err)
		}
		maxVsAmbit = 0
		for _, row := range tab.Rows {
			if r := ratioCell(b, row[7]); r > maxVsAmbit {
				maxVsAmbit = r
			}
		}
	}
	b.ReportMetric(maxVsAmbit, "max-kernel-speedup-vs-ambit")
}

// BenchmarkE5Reliability regenerates the process-variation Monte Carlo
// and reports the failure rate of the smallest node at 25% variation.
func BenchmarkE5Reliability(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		nodes := reliability.Nodes()
		last := nodes[len(nodes)-1]
		res := reliability.SimulateTRA(last, reliability.Variation{CellSigma: 0.25, SASigmaMV: 5}, 50000, 7)
		rate = res.FailureRate()
	}
	b.ReportMetric(rate, "failure-rate-22nm-25pct")
}

// BenchmarkE6Area regenerates the area table and reports the die
// fraction (paper: < 1%).
func BenchmarkE6Area(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		tab := experiments.E6Area()
		total := tab.Rows[len(tab.Rows)-1][3]
		lp, rp := strings.Index(total, "("), strings.Index(total, "%")
		v, err := strconv.ParseFloat(total[lp+1:rp], 64)
		if err != nil {
			b.Fatal(err)
		}
		pct = v
	}
	b.ReportMetric(pct, "area-overhead-pct")
}

// BenchmarkE7WidthScaling regenerates the width-scaling table and
// reports division's 64/32 latency ratio (≈4, quadratic).
func BenchmarkE7WidthScaling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E7WidthScaling()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[0] == "division" {
				v, err := strconv.ParseFloat(row[5], 64)
				if err != nil {
					b.Fatal(err)
				}
				ratio = v
			}
		}
	}
	b.ReportMetric(ratio, "div-64/32-latency-ratio")
}

// BenchmarkE8Transposition regenerates the transposition-overhead table
// and reports the largest share of pipeline time spent transposing.
func BenchmarkE8Transposition(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E8Transposition()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range tab.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
			if err != nil {
				b.Fatal(err)
			}
			if v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "transpose-share-pct")
}

// BenchmarkE9Ablation regenerates the optimization-ablation table and
// reports the geomean Step-1 (MAJ-native synthesis) gain.
func BenchmarkE9Ablation(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E9Ablation(16)
		if err != nil {
			b.Fatal(err)
		}
		geo = 1
		for _, row := range tab.Rows {
			geo *= ratioCell(b, row[5])
		}
		geo = math.Pow(geo, 1.0/float64(len(tab.Rows)))
	}
	b.ReportMetric(geo, "geomean-step1-gain")
}

// BenchmarkE10RowHammer regenerates the RowHammer exposure table and
// reports how many of the 16 operations exceed the DDR4 threshold under
// back-to-back execution.
func BenchmarkE10RowHammer(b *testing.B) {
	var exceeded float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E10RowHammer()
		if err != nil {
			b.Fatal(err)
		}
		exceeded = 0
		for _, row := range tab.Rows {
			if row[4] == "yes" {
				exceeded++
			}
		}
	}
	b.ReportMetric(exceeded, "ops-exceeding-ddr4-threshold")
}

// --- framework micro-benchmarks ---

// BenchmarkSimulatorAdd32 measures the functional simulator itself:
// wall-clock time to execute one 32-bit addition μProgram across a
// full subarray batch (32768 lanes on the default geometry).
func BenchmarkSimulatorAdd32(b *testing.B) {
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	n := sys.Lanes()
	rng := rand.New(rand.NewSource(1))
	av := make([]uint64, n)
	bv := make([]uint64, n)
	for i := range av {
		av[i] = uint64(rng.Uint32())
		bv[i] = uint64(rng.Uint32())
	}
	va, _ := sys.AllocVector(n, 32)
	vb, _ := sys.AllocVector(n, 32)
	dst, _ := sys.AllocVector(n, 32)
	if err := va.Store(av); err != nil {
		b.Fatal(err)
	}
	if err := vb.Store(bv); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run("addition", dst, va, vb); err != nil {
			b.Fatal(err)
		}
	}
}

// setupBatchProgram builds the shared bank-spread workload (see
// internal/batchgen): one independent addition per (bank, subarray) of
// the default 4-bank geometry.
func setupBatchProgram(b *testing.B) (*simdram.System, isa.Program) {
	b.Helper()
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := batchgen.Program(sys, 2)
	if err != nil {
		b.Fatal(err)
	}
	return sys, prog
}

// BenchmarkExecSerial issues the batch program one instruction at a
// time — the baseline the batched engine must beat.
func BenchmarkExecSerial(b *testing.B) {
	sys, prog := setupBatchProgram(b)
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range prog {
			if _, err := sys.Exec(in); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(prog))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkExecBatch issues the same program through the batched
// asynchronous engine: hazard analysis, then concurrent execution of
// bank-disjoint instructions on the persistent worker pool.
func BenchmarkExecBatch(b *testing.B) {
	sys, prog := setupBatchProgram(b)
	defer sys.Close()
	b.ResetTimer()
	var st simdram.BatchStats
	var err error
	for i := 0; i < b.N; i++ {
		if st, err = sys.ExecBatch(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(prog))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(st.Speedup(), "modeled-speedup")
}

// BenchmarkClusterExecBatch shards the bank-disjoint workload across a
// 4-channel cluster: every channel holds one segment of every vector
// and the channels execute their sub-batches concurrently. Compare the
// reported cluster-critical-path-ns against
// BenchmarkClusterSingleSystem's serial-equivalent-ns: the acceptance
// target is < 0.35×.
func BenchmarkClusterExecBatch(b *testing.B) {
	const channels = 4
	c, err := simdram.NewCluster(simdram.DefaultClusterConfig(channels))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	prog, err := batchgen.ClusterProgram(c, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st simdram.ClusterBatchStats
	for i := 0; i < b.N; i++ {
		if st, err = c.ExecBatch(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(prog))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(st.CriticalPathNs, "cluster-critical-path-ns")
	b.ReportMetric(st.Speedup(), "modeled-speedup")
	b.ReportMetric(st.UtilizationSkew(), "utilization-skew")
}

// BenchmarkClusterSingleSystem runs the identical total workload (same
// element counts, same instruction stream) on one System — the
// single-channel baseline of the cluster benchmark pair. Its
// serial-equivalent-ns metric is the denominator of the cluster
// scaling ratio.
func BenchmarkClusterSingleSystem(b *testing.B) {
	const channels = 4
	sys, err := simdram.New(simdram.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	prog, err := batchgen.ProgramScaled(sys, 2, channels)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st simdram.BatchStats
	for i := 0; i < b.N; i++ {
		if st, err = sys.ExecBatch(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(prog))*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(st.BusyNs, "serial-equivalent-ns")
	b.ReportMetric(st.CriticalPathNs, "critical-path-ns")
}

// BenchmarkSynthesis measures Step 1+2 cost for a representative set.
func BenchmarkSynthesis(b *testing.B) {
	for _, name := range []string{"addition", "greater", "multiplication"} {
		d, err := ops.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/32", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ops.Synthesize(d, 32, 0, ops.VariantSIMDRAM); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMIGOptimize measures the Step-1 rewriter on an 8-bit
// multiplier MIG.
func BenchmarkMIGOptimize(b *testing.B) {
	d, err := ops.ByName("multiplication")
	if err != nil {
		b.Fatal(err)
	}
	circuit, err := d.Build(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := mig.FromCircuit(circuit)
		if err != nil {
			b.Fatal(err)
		}
		m.Optimize(mig.DefaultOptimize())
	}
}

// BenchmarkKernelTPCH measures the full in-simulator TPC-H kernel.
func BenchmarkKernelTPCH(b *testing.B) {
	cfg := simdram.DefaultConfig()
	table := workload.NewLineItem(50000, 2)
	p := kernels.DefaultQ6()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := simdram.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := kernels.TPCHQ6SIMDRAM(sys, table, p); err != nil {
			b.Fatal(err)
		}
		sys.Close()
	}
}

// BenchmarkCPUBaseline measures the golden functional path, which is
// also the CPU baseline's semantics.
func BenchmarkCPUBaseline(b *testing.B) {
	d, err := ops.ByName("addition")
	if err != nil {
		b.Fatal(err)
	}
	n := 1 << 16
	rng := rand.New(rand.NewSource(1))
	a := make([]uint64, n)
	c := make([]uint64, n)
	for i := range a {
		a[i] = uint64(rng.Uint32())
		c[i] = uint64(rng.Uint32())
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Run(d, 32, [][]uint64{a, c})
	}
}

// BenchmarkAblation reports the command-count benefit of each framework
// optimization on 16-bit addition (DESIGN.md §7).
func BenchmarkAblation(b *testing.B) {
	d, err := ops.ByName("addition")
	if err != nil {
		b.Fatal(err)
	}
	tm := dram.DDR4_2400()
	variants := []struct {
		name string
		v    ops.Variant
	}{
		{"full", ops.VariantSIMDRAM},
		{"no-mig-optimize", ops.VariantNoOptimize},
		{"no-row-reuse", ops.VariantNoReuse},
		{"ambit", ops.VariantAmbit},
	}
	for _, variant := range variants {
		b.Run(variant.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s, err := ops.Synthesize(d, 16, 0, variant.v)
				if err != nil {
					b.Fatal(err)
				}
				lat = s.Program.LatencyNs(tm)
			}
			b.ReportMetric(lat, "uprogram-ns")
		})
	}
}
